"""Immutable compressed-sparse-row (CSR) graph.

The TESC framework spends essentially all of its time doing h-hop breadth
first searches.  The CSR layout stores every adjacency list contiguously in
one ``indices`` array addressed through ``indptr``, so a BFS touches memory
sequentially and neighbour iteration needs no Python-level set machinery.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

import numpy as np

from repro.exceptions import EdgeError, GraphError, NodeNotFoundError


class CSRGraph:
    """An immutable undirected graph in compressed sparse row form.

    Attributes
    ----------
    indptr:
        ``int64`` array of length ``num_nodes + 1``; the neighbours of node
        ``v`` are ``indices[indptr[v]:indptr[v + 1]]``.
    indices:
        ``int32``/``int64`` array of neighbour ids, both directions of each
        undirected edge stored once per endpoint.
    epoch:
        Copy-on-write generation tag.  A freshly built graph sits at epoch
        ``0``; every :meth:`replace_rows` / :meth:`apply_edge_deltas` splice
        returns a *new* CSR stamped ``epoch + 1`` while this object — and
        every row buffer it owns — stays untouched, which is what lets
        snapshot readers keep traversing retired row arrays until their
        lease drops (see :mod:`repro.streaming.snapshots`).
    """

    __slots__ = ("indptr", "indices", "epoch", "_num_edges")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray,
                 epoch: int = 0) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.epoch = int(epoch)
        if self.indptr.ndim != 1 or self.indices.ndim != 1:
            raise GraphError("indptr and indices must be 1-D arrays")
        if self.indptr.size == 0 or self.indptr[0] != 0:
            raise GraphError("indptr must start with 0 and be non-empty")
        if self.indptr[-1] != self.indices.size:
            raise GraphError("indptr[-1] must equal len(indices)")
        if np.any(np.diff(self.indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        self._num_edges = int(self.indices.size // 2)

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_adjacency(cls, adjacency: Sequence[Iterable[int]]) -> "CSRGraph":
        """Build from a sequence of per-node neighbour collections.

        Each neighbour collection is materialised exactly once, so one-shot
        iterables (generators) are safe to pass.
        """
        neighbour_lists: List[List[int]] = [sorted(neigh) for neigh in adjacency]
        degrees = np.array([len(neigh) for neigh in neighbour_lists], dtype=np.int64)
        indptr = np.zeros(len(neighbour_lists) + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        for node, neigh in enumerate(neighbour_lists):
            indices[indptr[node]:indptr[node + 1]] = neigh
        return cls(indptr, indices)

    @classmethod
    def from_edges(cls, num_nodes: int, edges: Iterable[Tuple[int, int]]) -> "CSRGraph":
        """Build from an edge list over ``num_nodes`` nodes.

        Self-loops are rejected; duplicate edges are collapsed.
        """
        adjacency: List[Set[int]] = [set() for _ in range(num_nodes)]
        for u, v in edges:
            if not (0 <= u < num_nodes) or not (0 <= v < num_nodes):
                raise NodeNotFoundError(u if not (0 <= u < num_nodes) else v)
            if u == v:
                raise GraphError(f"self-loop ({u}, {v}) is not allowed")
            adjacency[u].add(v)
            adjacency[v].add(u)
        return cls.from_adjacency(adjacency)

    # -- queries ------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return self.indptr.size - 1

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self._num_edges

    @property
    def nbytes(self) -> int:
        """Bytes held by the row arrays (lease-table retention accounting)."""
        return int(self.indptr.nbytes + self.indices.nbytes)

    def degree(self, node: int) -> int:
        """Degree of ``node``."""
        self._check_node(node)
        return int(self.indptr[node + 1] - self.indptr[node])

    def degrees(self) -> np.ndarray:
        """Vector of all node degrees."""
        return np.diff(self.indptr)

    def neighbors(self, node: int) -> np.ndarray:
        """Neighbour ids of ``node`` as a read-only array view."""
        self._check_node(node)
        return self.indices[self.indptr[node]:self.indptr[node + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``(u, v)`` exists."""
        self._check_node(u)
        self._check_node(v)
        row = self.neighbors(u)
        position = np.searchsorted(row, v)
        return bool(position < row.size and row[position] == v)

    def nodes(self) -> range:
        """All node ids."""
        return range(self.num_nodes)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over undirected edges once each, as ``(u, v)`` with ``u < v``."""
        for u in range(self.num_nodes):
            for v in self.neighbors(u):
                if u < int(v):
                    yield (u, int(v))

    def to_graph(self) -> "Graph":
        """Convert back to the mutable adjacency-set representation."""
        from repro.graph.adjacency import Graph

        graph = Graph(self.num_nodes)
        graph.add_edges(self.edges())
        return graph

    def apply_edge_deltas(
        self,
        added: Iterable[Tuple[int, int]] = (),
        removed: Iterable[Tuple[int, int]] = (),
    ) -> "CSRGraph":
        """A new CSR with the given edges added and removed.

        One-shot convenience over :meth:`replace_rows`: the touched
        endpoints' rows are rebuilt (a sorted merge per endpoint), every
        untouched row is block-copied, so the cost is one ``O(|E|)`` memcpy
        plus work proportional to the delta — no adjacency-set round-trip
        and no per-node Python rebuild of the whole graph.

        ``added`` must not contain existing edges or self-loops and
        ``removed`` must name existing edges — each delta list is applied
        against *this* graph, so net out no-ops and cancelling operations
        first.  The streaming subsystem does that netting itself against a
        per-node overlay and then calls :meth:`replace_rows` directly with
        the final rows (:meth:`repro.streaming.DynamicAttributedGraph.apply`);
        this method is the standalone API for callers that hold a clean
        delta list rather than an overlay.
        """
        patches: Dict[int, Tuple[List[int], List[int]]] = {}

        def _patch(node: int) -> Tuple[List[int], List[int]]:
            entry = patches.get(node)
            if entry is None:
                entry = ([], [])
                patches[node] = entry
            return entry

        for u, v in added:
            u, v = int(u), int(v)
            self._check_node(u)
            self._check_node(v)
            if u == v:
                raise GraphError(f"self-loop ({u}, {v}) is not allowed")
            if self.has_edge(u, v):
                raise EdgeError(f"edge ({u}, {v}) already exists")
            _patch(u)[0].append(v)
            _patch(v)[0].append(u)
        for u, v in removed:
            u, v = int(u), int(v)
            self._check_node(u)
            self._check_node(v)
            if not self.has_edge(u, v):
                raise EdgeError(f"edge ({u}, {v}) does not exist")
            _patch(u)[1].append(v)
            _patch(v)[1].append(u)
        if not patches:
            return self

        new_rows: Dict[int, List[int]] = {}
        for node, (add_list, remove_list) in patches.items():
            row = set(self.neighbors(node).tolist())
            row.difference_update(remove_list)
            row.update(add_list)
            new_rows[node] = sorted(row)
        return self.replace_rows(new_rows)

    def replace_rows(self, rows: Dict[int, Sequence[int]]) -> "CSRGraph":
        """A new CSR with the given adjacency rows swapped in wholesale.

        ``rows`` maps node ids to their complete new (sorted, ascending)
        neighbour lists; every other row is block-copied from this graph.
        This is the splice primitive under :meth:`apply_edge_deltas` —
        callers that already hold the final neighbour sets (the streaming
        graph's delta overlay) use it directly to skip the per-row set
        algebra.  The caller is responsible for symmetry: if ``v`` appears in
        ``rows[u]`` but the ``(u, v)`` edge is new, ``rows`` must also patch
        ``v``'s list.
        """
        if not rows:
            return self
        degrees = np.diff(self.indptr).copy()
        touched = np.array(sorted(rows), dtype=np.int64)
        if touched[0] < 0 or touched[-1] >= self.num_nodes:
            bad = touched[0] if touched[0] < 0 else touched[-1]
            raise NodeNotFoundError(int(bad))
        degrees[touched] = [len(rows[int(node)]) for node in touched]
        indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        # Copy the untouched stretches between consecutive touched rows in
        # bulk; only the touched rows themselves are written element-wise.
        previous = 0
        for node in touched:
            node = int(node)
            if previous < node:
                indices[indptr[previous]:indptr[node]] = (
                    self.indices[self.indptr[previous]:self.indptr[node]]
                )
            indices[indptr[node]:indptr[node + 1]] = rows[node]
            previous = node + 1
        if previous < self.num_nodes:
            indices[indptr[previous]:] = self.indices[self.indptr[previous]:]
        return CSRGraph(indptr, indices, epoch=self.epoch + 1)

    def __repr__(self) -> str:
        return f"CSRGraph(num_nodes={self.num_nodes}, num_edges={self.num_edges})"

    # -- internal -----------------------------------------------------------

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self.num_nodes):
            raise NodeNotFoundError(node)
