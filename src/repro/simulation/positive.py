"""Positively correlated event-pair generation (linked pairs).

Section 5.2: "Positively correlated event pairs are generated in a linked
pair fashion: we randomly select 5000 nodes from the graph as event a and
each node v ∈ V_a has an associated event b node whose distance to v is
described by a Gaussian distribution with mean zero and variance equal to h
(distances beyond h are set to h).  When the distance is decided, we randomly
pick a node at that distance from v as the associated event b node."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.exceptions import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.graph.traversal import shortest_path_lengths_from
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_positive_int, check_vicinity_level


@dataclass(frozen=True)
class LinkedPair:
    """One (event-a node, event-b node) link produced by the generator."""

    a_node: int
    b_node: int
    distance: int


def _gaussian_truncated_distance(rng: np.random.Generator, level: int) -> int:
    """|N(0, h)| rounded to an int, truncated to [0, h] as the paper does."""
    draw = abs(rng.normal(loc=0.0, scale=np.sqrt(level)))
    distance = int(round(draw))
    return min(distance, level)


def generate_positive_pair(
    graph: CSRGraph,
    num_event_nodes: int,
    level: int,
    random_state: RandomState = None,
    return_links: bool = False,
):
    """Generate a strongly positively correlated event pair at level ``h``.

    Returns ``(nodes_a, nodes_b)`` (both sorted int64 arrays) or, with
    ``return_links=True``, ``(nodes_a, nodes_b, links)`` where ``links``
    records each planted (a, b, distance) triple.

    Every event-a node has a companion event-b node within ``h`` hops, so
    wherever a is observed, b is nearby — the paper's definition of a strong
    positive correlation.  A node whose chosen distance is unreachable falls
    back to the largest reachable distance not exceeding ``h`` (itself in the
    worst case of an isolated node).
    """
    level = check_vicinity_level(level)
    num_event_nodes = check_positive_int(num_event_nodes, "num_event_nodes")
    if num_event_nodes > graph.num_nodes:
        raise ConfigurationError(
            f"cannot place {num_event_nodes} event nodes in a graph of "
            f"{graph.num_nodes} nodes"
        )
    rng = ensure_rng(random_state)

    nodes_a = rng.choice(graph.num_nodes, size=num_event_nodes, replace=False)
    nodes_b: List[int] = []
    links: List[LinkedPair] = []

    for a_node in nodes_a:
        a_node = int(a_node)
        target_distance = _gaussian_truncated_distance(rng, level)
        distances = shortest_path_lengths_from(graph, a_node, cutoff=level)
        b_node = a_node
        chosen_distance = 0
        for candidate_distance in range(target_distance, -1, -1):
            candidates = np.flatnonzero(distances == candidate_distance)
            if candidates.size:
                b_node = int(candidates[int(rng.integers(0, candidates.size))])
                chosen_distance = candidate_distance
                break
        nodes_b.append(b_node)
        links.append(LinkedPair(a_node=a_node, b_node=b_node, distance=chosen_distance))

    nodes_a = np.sort(nodes_a.astype(np.int64))
    nodes_b_array = np.array(sorted(set(nodes_b)), dtype=np.int64)
    if return_links:
        return nodes_a, nodes_b_array, links
    return nodes_a, nodes_b_array
