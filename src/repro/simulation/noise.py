"""Noise injection for simulated event pairs (Section 5.2.1).

"Regarding positive correlation, we introduce a sequence of independent
Bernoulli trials, one for each linked pair of event nodes, in which with
probability p the pair is broken and the node of b is relocated outside
V^h_a.  For negative correlation, given an event pair each node in V_b has
probability p to be relocated and attached with one node in V_a."
"""

from __future__ import annotations


import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.traversal import batch_bfs_vicinity, shortest_path_lengths_from
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_fraction, check_vicinity_level


def add_positive_noise(
    graph: CSRGraph,
    nodes_a: np.ndarray,
    nodes_b: np.ndarray,
    level: int,
    noise: float,
    random_state: RandomState = None,
) -> np.ndarray:
    """Break each a–b link with probability ``noise``.

    Every b node is subjected to an independent Bernoulli trial; on success
    it is relocated to a uniformly random node outside ``V^h_a``, weakening
    the positive correlation.  Returns the new event-b node set.
    """
    level = check_vicinity_level(level)
    noise = check_fraction(noise, "noise")
    rng = ensure_rng(random_state)
    nodes_a = np.asarray(nodes_a, dtype=np.int64)
    nodes_b = np.asarray(nodes_b, dtype=np.int64)
    if noise == 0.0 or nodes_b.size == 0:
        return nodes_b.copy()

    vicinity_a = batch_bfs_vicinity(graph, nodes_a, level)
    outside = np.setdiff1d(np.arange(graph.num_nodes, dtype=np.int64), vicinity_a)
    if outside.size == 0:
        # Nowhere to relocate: the vicinity covers the graph, noise is a no-op.
        return nodes_b.copy()

    keep = []
    relocated = 0
    for node in nodes_b:
        if rng.random() < noise:
            relocated += 1
        else:
            keep.append(int(node))
    if relocated:
        replacement = rng.choice(outside, size=min(relocated, outside.size), replace=False)
        keep.extend(int(node) for node in replacement)
    return np.array(sorted(set(keep)), dtype=np.int64)


def add_negative_noise(
    graph: CSRGraph,
    nodes_a: np.ndarray,
    nodes_b: np.ndarray,
    level: int,
    noise: float,
    random_state: RandomState = None,
) -> np.ndarray:
    """Relocate each b node next to a random a node with probability ``noise``.

    A relocated b node is attached to a uniformly chosen a node: it is placed
    at a uniformly random position within that node's ``h``-vicinity
    (preferring distance >= 1 when possible), which injects positive evidence
    and weakens the planted negative correlation.  Returns the new event-b
    node set.
    """
    level = check_vicinity_level(level)
    noise = check_fraction(noise, "noise")
    rng = ensure_rng(random_state)
    nodes_a = np.asarray(nodes_a, dtype=np.int64)
    nodes_b = np.asarray(nodes_b, dtype=np.int64)
    if noise == 0.0 or nodes_b.size == 0 or nodes_a.size == 0:
        return nodes_b.copy()

    result = []
    for node in nodes_b:
        if rng.random() < noise:
            anchor = int(nodes_a[int(rng.integers(0, nodes_a.size))])
            distances = shortest_path_lengths_from(graph, anchor, cutoff=level)
            nearby = np.flatnonzero((distances >= 1) & (distances <= level))
            if nearby.size == 0:
                nearby = np.array([anchor], dtype=np.int64)
            result.append(int(nearby[int(rng.integers(0, nearby.size))]))
        else:
            result.append(int(node))
    return np.array(sorted(set(result)), dtype=np.int64)
