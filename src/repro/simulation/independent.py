"""Independent event-pair generation (the null case).

Used to measure the test's Type I error: two events placed uniformly at
random, with no structural relationship, should be declared independent
roughly ``1 - α`` of the time.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_positive_int


def generate_independent_pair(
    graph: CSRGraph,
    num_a_nodes: int,
    num_b_nodes: int = None,
    random_state: RandomState = None,
    allow_overlap: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Two uniformly random, structurally independent event node sets.

    With ``allow_overlap=True`` (default) the two sets are drawn
    independently, so they may share nodes just as two unrelated real events
    could co-occur by chance.
    """
    num_a_nodes = check_positive_int(num_a_nodes, "num_a_nodes")
    if num_b_nodes is None:
        num_b_nodes = num_a_nodes
    num_b_nodes = check_positive_int(num_b_nodes, "num_b_nodes")
    if max(num_a_nodes, num_b_nodes) > graph.num_nodes:
        raise ConfigurationError("event size exceeds the number of graph nodes")
    rng = ensure_rng(random_state)

    nodes_a = np.sort(rng.choice(graph.num_nodes, size=num_a_nodes, replace=False))
    if allow_overlap:
        nodes_b = np.sort(rng.choice(graph.num_nodes, size=num_b_nodes, replace=False))
    else:
        eligible = np.setdiff1d(np.arange(graph.num_nodes), nodes_a)
        if eligible.size < num_b_nodes:
            raise ConfigurationError(
                "not enough nodes left for a disjoint independent pair"
            )
        nodes_b = np.sort(rng.choice(eligible, size=num_b_nodes, replace=False))
    return nodes_a.astype(np.int64), nodes_b.astype(np.int64)
