"""Event simulation (Section 5.2): correlated event pairs and recall studies.

The paper validates TESC by planting event pairs with known positive or
negative structural correlation on a real graph, perturbing them with noise
and measuring recall — the fraction of pairs the test correctly declares
correlated at α = 0.05.  This package reproduces the generation and
evaluation pipeline.
"""

from repro.simulation.positive import generate_positive_pair
from repro.simulation.negative import generate_negative_pair
from repro.simulation.independent import generate_independent_pair
from repro.simulation.noise import add_negative_noise, add_positive_noise
from repro.simulation.recall import RecallEvaluation, evaluate_recall
from repro.simulation.runner import SimulatedPair, SimulationStudy

__all__ = [
    "generate_positive_pair",
    "generate_negative_pair",
    "generate_independent_pair",
    "add_positive_noise",
    "add_negative_noise",
    "RecallEvaluation",
    "evaluate_recall",
    "SimulatedPair",
    "SimulationStudy",
]
