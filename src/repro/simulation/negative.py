"""Negatively correlated event-pair generation.

Section 5.2: "for negative correlation, again we first generate 5000 event a
nodes randomly, after which we employ Batch BFS to retrieve the nodes in the
h-vicinity of V_a, i.e. V^h_a.  Then we randomly color 5000 nodes in V \\ V^h_a
as having event b.  In this way, every node of b is kept at least h+1 hops
away from all nodes of a and the two events exhibit a strong negative
correlation."
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.graph.traversal import batch_bfs_vicinity
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_positive_int, check_vicinity_level


def generate_negative_pair(
    graph: CSRGraph,
    num_event_nodes: int,
    level: int,
    random_state: RandomState = None,
    num_b_nodes: int = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate a strongly negatively correlated event pair at level ``h``.

    Event a is a uniform random node set; event b is a uniform random set
    drawn from ``V \\ V^h_a`` so every b node is at least ``h+1`` hops from
    every a node.  When the complement is smaller than the requested size,
    all remaining eligible nodes are used (this happens at high ``h`` on
    small or dense graphs — exactly the "hard to escape" effect the paper
    describes); if the complement is empty, a
    :class:`~repro.exceptions.ConfigurationError` is raised because no
    negative pair exists at that level.
    """
    level = check_vicinity_level(level)
    num_event_nodes = check_positive_int(num_event_nodes, "num_event_nodes")
    if num_b_nodes is None:
        num_b_nodes = num_event_nodes
    num_b_nodes = check_positive_int(num_b_nodes, "num_b_nodes")
    if num_event_nodes > graph.num_nodes:
        raise ConfigurationError(
            f"cannot place {num_event_nodes} event nodes in a graph of "
            f"{graph.num_nodes} nodes"
        )
    rng = ensure_rng(random_state)

    nodes_a = np.sort(
        rng.choice(graph.num_nodes, size=num_event_nodes, replace=False).astype(np.int64)
    )
    vicinity_a = batch_bfs_vicinity(graph, nodes_a, level)
    eligible = np.setdiff1d(
        np.arange(graph.num_nodes, dtype=np.int64), vicinity_a, assume_unique=False
    )
    if eligible.size == 0:
        raise ConfigurationError(
            f"the {level}-vicinity of event a covers the whole graph; "
            "no negative pair can be planted at this level"
        )
    take = min(num_b_nodes, int(eligible.size))
    nodes_b = np.sort(rng.choice(eligible, size=take, replace=False).astype(np.int64))
    return nodes_a, nodes_b
