"""Recall evaluation of the TESC test over simulated event pairs.

The paper's efficacy metric (Section 5.2) is recall: the fraction of planted
correlated pairs that the one-tailed test at α = 0.05 correctly declares
correlated in the planted direction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.config import TescConfig
from repro.core.tesc import TescResult, TescTester
from repro.events.attributed_graph import AttributedGraph
from repro.exceptions import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.stats.hypothesis import CorrelationVerdict


@dataclass
class RecallEvaluation:
    """Recall of a batch of simulated pairs, plus per-pair diagnostics."""

    expected: str
    detected: int = 0
    total: int = 0
    z_scores: List[float] = field(default_factory=list)
    results: List[TescResult] = field(default_factory=list)

    @property
    def recall(self) -> float:
        """Fraction of pairs detected as correlated in the expected direction."""
        return self.detected / self.total if self.total else 0.0

    @property
    def mean_z(self) -> float:
        """Mean z-score across all evaluated pairs."""
        return float(np.mean(self.z_scores)) if self.z_scores else 0.0

    def record(self, result: TescResult) -> None:
        """Add one pair's test result to the evaluation."""
        self.total += 1
        self.z_scores.append(result.z_score)
        self.results.append(result)
        if self.expected == "positive" and result.verdict is CorrelationVerdict.POSITIVE:
            self.detected += 1
        elif self.expected == "negative" and result.verdict is CorrelationVerdict.NEGATIVE:
            self.detected += 1
        elif self.expected == "independent" and result.verdict is CorrelationVerdict.INDEPENDENT:
            self.detected += 1


def evaluate_recall(
    graph: CSRGraph,
    pairs: Sequence[Tuple[np.ndarray, np.ndarray]],
    expected: str,
    config: TescConfig,
    keep_results: bool = False,
) -> RecallEvaluation:
    """Test every simulated pair and compute recall.

    Parameters
    ----------
    graph:
        The substrate graph (shared by all pairs).
    pairs:
        Sequence of ``(nodes_a, nodes_b)`` planted event pairs.
    expected:
        ``"positive"``, ``"negative"`` or ``"independent"`` — the planted
        ground truth.  One-tailed alternatives are selected automatically
        when the config uses the default two-sided alternative, matching the
        paper's one-tailed tests.
    config:
        The TESC test configuration (vicinity level, sampler, sample size).
    keep_results:
        Whether to retain each full :class:`TescResult` (memory-heavy for
        large studies).
    """
    if expected not in ("positive", "negative", "independent"):
        raise ConfigurationError(
            f"expected must be 'positive', 'negative' or 'independent', got {expected!r}"
        )
    alternative = config.alternative
    if alternative == "two-sided" and expected == "positive":
        alternative = "greater"
    elif alternative == "two-sided" and expected == "negative":
        alternative = "less"

    evaluation = RecallEvaluation(expected=expected)
    for index, (nodes_a, nodes_b) in enumerate(pairs):
        attributed = AttributedGraph(graph, {"a": nodes_a, "b": nodes_b})
        pair_config = TescConfig(
            vicinity_level=config.vicinity_level,
            sample_size=config.sample_size,
            sampler=config.sampler,
            alpha=config.alpha,
            alternative=alternative,
            batch_per_vicinity=config.batch_per_vicinity,
            random_state=_derive_pair_seed(config, index),
        )
        tester = TescTester(attributed, pair_config)
        result = tester.test("a", "b")
        evaluation.record(result)
        if not keep_results:
            evaluation.results.clear()
    return evaluation


def _derive_pair_seed(config: TescConfig, index: int):
    """Derive a per-pair random state so batches are reproducible."""
    base = config.random_state
    if base is None:
        return None
    if isinstance(base, (int, np.integer)):
        return int(base) * 100_003 + index
    return base
