"""Simulation-study orchestration.

:class:`SimulationStudy` generates batches of correlated pairs on a graph,
injects noise, and evaluates recall across samplers / vicinity levels /
noise levels — the machinery behind Figures 5–8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.config import TescConfig
from repro.graph.csr import CSRGraph
from repro.simulation.negative import generate_negative_pair
from repro.simulation.noise import add_negative_noise, add_positive_noise
from repro.simulation.positive import generate_positive_pair
from repro.simulation.recall import RecallEvaluation, evaluate_recall
from repro.utils.rng import RandomState, ensure_rng, spawn_rngs
from repro.utils.validation import check_fraction, check_positive_int, check_vicinity_level


@dataclass(frozen=True)
class SimulatedPair:
    """One planted event pair with its generation metadata."""

    nodes_a: np.ndarray
    nodes_b: np.ndarray
    correlation: str
    level: int
    noise: float


class SimulationStudy:
    """Generate and evaluate batches of simulated correlated event pairs.

    Parameters
    ----------
    graph:
        The substrate graph (the paper uses DBLP; the reproduction defaults
        to the synthetic DBLP-like graph).
    event_size:
        Number of event-a (and event-b) nodes per pair (paper: 5000; the
        reproduction scales this down with the graph).
    num_pairs:
        Number of pairs per configuration (paper: 100).
    random_state:
        Seed for pair generation; evaluation seeds derive from the config.
    """

    def __init__(
        self,
        graph: CSRGraph,
        event_size: int,
        num_pairs: int,
        random_state: RandomState = None,
    ) -> None:
        self.graph = graph
        self.event_size = check_positive_int(event_size, "event_size")
        self.num_pairs = check_positive_int(num_pairs, "num_pairs")
        self.rng = ensure_rng(random_state)

    # -- generation ----------------------------------------------------------

    def generate_pairs(self, correlation: str, level: int,
                       noise: float = 0.0) -> List[SimulatedPair]:
        """Generate ``num_pairs`` planted pairs of the requested kind."""
        check_vicinity_level(level)
        noise = check_fraction(noise, "noise")
        if correlation not in ("positive", "negative"):
            raise ValueError("correlation must be 'positive' or 'negative'")
        rngs = spawn_rngs(self.rng, self.num_pairs)
        pairs: List[SimulatedPair] = []
        for pair_rng in rngs:
            if correlation == "positive":
                nodes_a, nodes_b = generate_positive_pair(
                    self.graph, self.event_size, level, random_state=pair_rng
                )
                if noise > 0:
                    nodes_b = add_positive_noise(
                        self.graph, nodes_a, nodes_b, level, noise, random_state=pair_rng
                    )
            else:
                nodes_a, nodes_b = generate_negative_pair(
                    self.graph, self.event_size, level, random_state=pair_rng
                )
                if noise > 0:
                    nodes_b = add_negative_noise(
                        self.graph, nodes_a, nodes_b, level, noise, random_state=pair_rng
                    )
            pairs.append(
                SimulatedPair(
                    nodes_a=nodes_a,
                    nodes_b=nodes_b,
                    correlation=correlation,
                    level=level,
                    noise=noise,
                )
            )
        return pairs

    # -- evaluation ------------------------------------------------------------

    def recall_for(self, correlation: str, level: int, noise: float,
                   config: TescConfig) -> RecallEvaluation:
        """Generate pairs for one configuration and evaluate recall."""
        pairs = self.generate_pairs(correlation, level, noise)
        return evaluate_recall(
            self.graph,
            [(pair.nodes_a, pair.nodes_b) for pair in pairs],
            expected=correlation,
            config=config.with_level(level),
        )

    def noise_sweep(
        self,
        correlation: str,
        level: int,
        noise_levels: Sequence[float],
        config: TescConfig,
    ) -> Dict[float, RecallEvaluation]:
        """Recall across a grid of noise levels (one Figure 5/6 curve)."""
        return {
            float(noise): self.recall_for(correlation, level, noise, config)
            for noise in noise_levels
        }

    def sampler_sweep(
        self,
        correlation: str,
        level: int,
        noise_levels: Sequence[float],
        samplers: Sequence[str],
        base_config: TescConfig,
    ) -> Dict[str, Dict[float, RecallEvaluation]]:
        """Recall curves for several samplers (one Figure 5/6 subfigure)."""
        curves: Dict[str, Dict[float, RecallEvaluation]] = {}
        for sampler in samplers:
            config = base_config.with_sampler(sampler)
            curves[sampler] = self.noise_sweep(correlation, level, noise_levels, config)
        return curves
