"""A dependency-free metrics registry: counters, gauges, histograms.

Every long-lived component of the service stack (the engine, the admission
controller, the lease table, the samplers, the progressive top-k engine)
hangs its lifetime counters off one :class:`MetricsRegistry`.  The registry
is deliberately tiny and self-contained — no client library, no background
threads — because the service must stay importable in the bare scientific
toolchain the repo targets:

* **Counters** only go up.  Increments take a per-metric lock, so totals
  reconcile *exactly* with the number of calls even under thread hammering
  (asserted by the concurrency reconciliation suite — a bare ``+=`` can
  drop increments at bytecode boundaries).
* **Gauges** hold a point-in-time value; :meth:`Gauge.set_function` binds a
  pull callback instead (cache occupancy, lease retention), evaluated at
  snapshot time so the gauge can never go stale.
* **Histograms** bucket observations into monotonic upper bounds (plus a
  ``+Inf`` overflow), keeping cumulative bucket counts, the running sum and
  the observation count — the exact shape Prometheus expects.

Families may declare label names; :meth:`MetricFamily.labels` returns the
per-label-values child metric, created on first use.  The whole registry
snapshots to a plain dict (:meth:`MetricsRegistry.snapshot` — JSON-safe,
served by the ``metrics`` protocol verb) and renders to the Prometheus text
exposition format (:meth:`MetricsRegistry.exposition`, served over HTTP by
``tesc serve --metrics-port``).

A registry constructed with ``enabled=False`` hands out shared no-op
metrics: every instrument call is a constant-time method on a singleton,
which is what the ``bench_micro`` overhead guard compares the instrumented
path against.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: Default latency buckets, in seconds (sub-millisecond to tens of seconds).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _format_value(value: float) -> str:
    """A float in Prometheus text form (integers without the trailing .0)."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


class Counter:
    """A monotonically increasing counter (exact under concurrency)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up, got increment {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A point-in-time value, settable directly or bound to a callback."""

    __slots__ = ("_fn", "_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        with self._lock:
            self._fn = None
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Bind a pull callback; the gauge reads it at snapshot time."""
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> float:
        fn = self._fn
        if fn is not None:
            try:
                return float(fn())
            except Exception:
                # A callback bound to torn-down state must never break a
                # metrics scrape; report an impossible-but-harmless value.
                return float("nan")
        return self._value


class Histogram:
    """Cumulative-bucket histogram over monotonic upper bounds."""

    __slots__ = ("_bucket_counts", "_count", "_lock", "_sum", "bounds")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(
                f"histogram buckets must be strictly increasing, got {bounds}"
            )
        self.bounds = bounds
        self._lock = threading.Lock()
        self._bucket_counts = [0] * len(bounds)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._sum += value
            self._count += 1
            # Per-bucket (non-cumulative) counts; cumulative_buckets() sums.
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    self._bucket_counts[index] += 1
                    break

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def cumulative_buckets(self) -> Dict[str, int]:
        """``{upper_bound: cumulative_count}`` including the ``+Inf`` bucket."""
        with self._lock:
            counts = list(self._bucket_counts)
            total = self._count
        cumulative: Dict[str, int] = {}
        running = 0
        for bound, count in zip(self.bounds, counts):
            running += count
            cumulative[_format_value(bound)] = running
        cumulative["+Inf"] = total
        return cumulative


class _NullMetric:
    """Shared no-op stand-in for every metric kind (disabled registries)."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_function(self, fn: Callable[[], float]) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def labels(self, **_labels: str) -> "_NullMetric":
        return self

    @property
    def value(self) -> float:
        return 0.0

    @property
    def count(self) -> int:
        return 0

    @property
    def sum(self) -> float:
        return 0.0

    def cumulative_buckets(self) -> Dict[str, int]:
        return {}


#: The process-wide no-op metric every disabled registry hands out.
NULL_METRIC = _NullMetric()


class MetricFamily:
    """One named metric plus its per-label-values children.

    Families without label names proxy the instrument methods straight to
    their single anonymous child, so ``registry.counter("x").inc()`` works
    without a ``labels()`` hop.
    """

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str = "",
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.label_names = tuple(label_names)
        self._buckets = tuple(buckets)
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], object] = {}
        if not self.label_names:
            self._children[()] = self._make_child()

    def _make_child(self):
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(self._buckets)

    def labels(self, **labels: str):
        """The child metric for these label values (created on first use)."""
        if tuple(sorted(labels)) != tuple(sorted(self.label_names)):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._make_child())
        return child

    def _default_child(self):
        if self.label_names:
            raise ValueError(
                f"metric {self.name!r} is labelled {self.label_names}; "
                "call .labels(...) first"
            )
        return self._children[()]

    # Convenience passthroughs for label-less families.

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def set_function(self, fn: Callable[[], float]) -> None:
        self._default_child().set_function(fn)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    @property
    def value(self) -> float:
        return self._default_child().value

    @property
    def count(self) -> int:
        return self._default_child().count

    @property
    def sum(self) -> float:
        return self._default_child().sum

    def cumulative_buckets(self) -> Dict[str, int]:
        return self._default_child().cumulative_buckets()

    def children(self) -> List[Tuple[Dict[str, str], object]]:
        """``(labels_dict, metric)`` pairs, label-sorted for stable output."""
        with self._lock:
            items = sorted(self._children.items())
        return [
            (dict(zip(self.label_names, key)), metric)
            for key, metric in items
        ]


class MetricsRegistry:
    """A named collection of metric families, snapshot-able two ways.

    Parameters
    ----------
    enabled:
        ``False`` turns every registration into the shared no-op metric —
        the zero-overhead build the instrumentation benchmark compares
        against.  Disabled registries snapshot to ``{}``.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._families: "Dict[str, MetricFamily]" = {}

    # -- registration --------------------------------------------------------

    def _register(
        self,
        name: str,
        kind: str,
        help_text: str,
        label_names: Sequence[str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        if not self.enabled:
            return NULL_METRIC
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r} on {name!r}")
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.label_names != tuple(label_names):
                    raise ValueError(
                        f"metric {name!r} is already registered as a "
                        f"{family.kind} with labels {family.label_names}"
                    )
                return family
            family = MetricFamily(name, kind, help_text, label_names, buckets)
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str = "",
                labels: Sequence[str] = ()):
        """Register (or fetch) a counter family."""
        return self._register(name, "counter", help_text, labels)

    def gauge(self, name: str, help_text: str = "",
              labels: Sequence[str] = ()):
        """Register (or fetch) a gauge family."""
        return self._register(name, "gauge", help_text, labels)

    def histogram(self, name: str, help_text: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS):
        """Register (or fetch) a histogram family."""
        return self._register(name, "histogram", help_text, labels, buckets)

    # -- snapshots -----------------------------------------------------------

    def families(self) -> List[MetricFamily]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Every family as a plain (JSON-safe) dict, name-sorted."""
        result: Dict[str, Dict[str, object]] = {}
        for family in self.families():
            values: List[Dict[str, object]] = []
            for labels, metric in family.children():
                if family.kind == "histogram":
                    values.append({
                        "labels": labels,
                        "count": metric.count,
                        "sum": metric.sum,
                        "buckets": metric.cumulative_buckets(),
                    })
                else:
                    values.append({"labels": labels, "value": metric.value})
            result[family.name] = {
                "type": family.kind,
                "help": family.help,
                "values": values,
            }
        return result

    def value(self, name: str, **labels: str) -> float:
        """One metric's current value (histograms report their count)."""
        with self._lock:
            family = self._families.get(name)
        if family is None:
            raise KeyError(f"no metric named {name!r}")
        metric = family.labels(**labels) if labels else family._default_child()
        if family.kind == "histogram":
            return float(metric.count)
        return float(metric.value)

    def exposition(self) -> str:
        """The registry in Prometheus text exposition format (0.0.4)."""
        lines: List[str] = []
        for family in self.families():
            if family.help:
                escaped = family.help.replace("\\", "\\\\").replace("\n", "\\n")
                lines.append(f"# HELP {family.name} {escaped}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labels, metric in family.children():
                base = _render_labels(labels)
                if family.kind == "histogram":
                    for bound, count in metric.cumulative_buckets().items():
                        bucket_labels = _render_labels({**labels, "le": bound})
                        lines.append(
                            f"{family.name}_bucket{bucket_labels} {count}"
                        )
                    lines.append(
                        f"{family.name}_sum{base} {_format_value(metric.sum)}"
                    )
                    lines.append(f"{family.name}_count{base} {metric.count}")
                else:
                    lines.append(
                        f"{family.name}{base} {_format_value(metric.value)}"
                    )
        return "\n".join(lines) + "\n" if lines else ""


def _render_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    parts = ",".join(
        f'{name}="{_escape_label(value)}"' for name, value in labels.items()
    )
    return "{" + parts + "}"


#: Shared always-disabled registry for "no metrics, zero overhead" callers.
NULL_REGISTRY = MetricsRegistry(enabled=False)
