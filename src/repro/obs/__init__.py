"""End-to-end telemetry for the TESC stack.

Three small, dependency-free pieces:

* :mod:`repro.obs.registry` — counters, gauges and monotonic-bucket
  histograms in one thread-safe :class:`MetricsRegistry`, snapshot-able to
  a plain dict (the ``metrics`` protocol verb) and to the Prometheus text
  exposition format;
* :mod:`repro.obs.trace` — the :func:`trace`/:func:`stage` span API that
  stamps every rank/topk/commit request with per-stage timings and
  propagates span context across the worker-pool fork boundary
  (:func:`propagation` → :func:`remote_record` → :func:`attach_remote`);
* :mod:`repro.obs.exposition` / :mod:`repro.obs.slowlog` — the HTTP
  ``/metrics`` endpoint behind ``tesc serve --metrics-port`` and the
  JSON-lines slow-request log.

Every instrument degrades to a shared no-op when built against a disabled
registry (``MetricsRegistry(enabled=False)`` / :data:`NULL_REGISTRY`),
which is what the ``bench_micro`` overhead guard measures against.
"""

from repro.obs.exposition import MetricsHTTPServer
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    NULL_METRIC,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.slowlog import SlowRequestLog
from repro.obs.trace import (
    Span,
    TraceBuffer,
    attach_remote,
    current_span,
    propagation,
    remote_record,
    stage,
    trace,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsHTTPServer",
    "MetricsRegistry",
    "NULL_METRIC",
    "NULL_REGISTRY",
    "SlowRequestLog",
    "Span",
    "TraceBuffer",
    "attach_remote",
    "current_span",
    "propagation",
    "remote_record",
    "stage",
    "trace",
]
