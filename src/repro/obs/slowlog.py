"""Structured slow-request logging: JSON lines carrying the span tree.

Any root request span whose duration crosses the configured threshold is
emitted as **one JSON document per line** through the library's logging
namespace (``repro.obs.slowlog``) — machine-parseable, stage-attributed,
and wired to a bare-``message`` handler by
:func:`repro.utils.logging.configure_json_logging` so the line *is* the
document.  The engine calls :meth:`SlowRequestLog.maybe_log` from its
trace sink; a threshold of ``None`` disables the log entirely.
"""

from __future__ import annotations

import json
import logging
from typing import Optional

from repro.obs.trace import Span
from repro.utils.logging import get_logger

SLOWLOG_LOGGER_NAME = "obs.slowlog"


class SlowRequestLog:
    """Emit requests slower than ``threshold_seconds`` as JSON lines.

    Parameters
    ----------
    threshold_seconds:
        Requests at or above this duration are logged; ``None`` logs
        nothing (the default service configuration).
    logger:
        Override the destination logger (tests pass a capturing one).
    """

    def __init__(
        self,
        threshold_seconds: Optional[float] = None,
        logger: Optional[logging.Logger] = None,
    ) -> None:
        self.threshold_seconds = (
            None if threshold_seconds is None else float(threshold_seconds)
        )
        self._logger = logger if logger is not None else get_logger(
            SLOWLOG_LOGGER_NAME
        )
        self.emitted = 0

    @property
    def enabled(self) -> bool:
        return self.threshold_seconds is not None

    def maybe_log(self, span: Span) -> bool:
        """Log ``span`` if it crossed the threshold; returns whether it did."""
        if (
            self.threshold_seconds is None
            or span.duration is None
            or span.duration < self.threshold_seconds
        ):
            return False
        document = {
            "event": "slow_request",
            "request": span.name,
            "seconds": span.duration,
            "threshold_seconds": self.threshold_seconds,
            "trace_id": span.trace_id,
            "span_tree": span.to_dict(),
        }
        self._logger.warning(json.dumps(document, sort_keys=True, default=str))
        self.emitted += 1
        return True
