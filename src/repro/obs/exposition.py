"""Prometheus text exposition over HTTP (``tesc serve --metrics-port``).

A tiny :mod:`http.server`-based endpoint serving one registry:

* ``GET /metrics`` — the registry in text exposition format 0.0.4;
* ``GET /`` — a one-line pointer to ``/metrics`` (human convenience).

Scrapes are read-only and lock-free against the request path (the registry
snapshots under its own fine-grained locks), so a scraper can never slow a
rank request down.  The server binds loopback by default, uses a threading
HTTP server (scrapes may overlap), and is torn down with :meth:`close`.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.obs.registry import MetricsRegistry

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsHTTPServer:
    """Serve one registry's exposition on ``host:port`` until closed.

    ``port=0`` binds a free port; read :attr:`address` after
    :meth:`start`.  Usable as a context manager.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.registry = registry
        self._host = host
        self._port = int(port)
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` the endpoint is bound to (valid after start)."""
        if self._httpd is None:
            raise RuntimeError("metrics server is not started")
        return self._httpd.server_address[:2]

    def start(self) -> "MetricsHTTPServer":
        if self._httpd is not None:
            return self
        registry = self.registry

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                if self.path.split("?", 1)[0] == "/metrics":
                    body = registry.exposition().encode("utf-8")
                    self.send_response(200)
                    self.send_header("Content-Type", CONTENT_TYPE)
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                elif self.path == "/":
                    body = b"tesc metrics endpoint; scrape /metrics\n"
                    self.send_response(200)
                    self.send_header("Content-Type", "text/plain; charset=utf-8")
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                else:
                    self.send_error(404, "unknown path; scrape /metrics")

            def log_message(self, *_args) -> None:  # silence per-scrape lines
                pass

        self._httpd = ThreadingHTTPServer((self._host, self._port), _Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="tesc-metrics-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving (idempotent)."""
        httpd, self._httpd = self._httpd, None
        thread, self._thread = self._thread, None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsHTTPServer":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.close()
