"""Per-request span trees: stage timings that survive the fork boundary.

A *span* is one timed region of a request — ``rank`` → ``sampling`` →
``density`` → ``estimate`` — held in a tree rooted at the request span.
Nesting is implicit through a :mod:`contextvars` variable: :func:`trace`
pushes a span for the ``with`` body and attaches it to whatever span was
current, so instrumented library code composes without threading a context
object through every call.

Two entry points with different zero-state behaviour:

* :func:`trace` always records; roots call ``sink(span)`` on completion
  (the engine's sink feeds its :class:`TraceBuffer` and slow-request log).
* :func:`stage` records **only when a request span is already open** —
  library hot paths (the batch engine, the top-k round loop) call it
  unconditionally and pay one contextvar read when nobody is tracing.

**Fork propagation.**  Worker-pool tasks cannot share the parent's
contextvars, so the boundary is crossed by value: the parent passes
:func:`propagation` (a small picklable dict naming the current span), the
worker times itself and returns :func:`remote_record`, and the parent
grafts it back with :func:`attach_remote` — a pre-measured child span
marked ``remote`` whose duration is the worker's own wall clock.  Worker
CPU is thereby attributed to the exact request (and stage) that dispatched
it, while shard spans stay bounded by their enclosing stage's wall time.
"""

from __future__ import annotations

import contextvars
import itertools
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional

_CURRENT: "contextvars.ContextVar[Optional[Span]]" = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)

_TRACE_COUNTER = itertools.count(1)
_SPAN_COUNTER = itertools.count(1)


def _new_trace_id() -> str:
    return f"t{os.getpid():x}-{next(_TRACE_COUNTER):x}"


def _new_span_id() -> str:
    return f"s{next(_SPAN_COUNTER):x}"


class Span:
    """One timed region; durations in seconds, children in start order."""

    __slots__ = (
        "children", "duration", "name", "parent_id", "remote", "span_id",
        "started_at", "tags", "trace_id", "_t0",
    )

    def __init__(
        self,
        name: str,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        tags: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id if trace_id is not None else _new_trace_id()
        self.span_id = _new_span_id()
        self.parent_id = parent_id
        self.tags: Dict[str, Any] = dict(tags or {})
        self.children: List["Span"] = []
        self.remote = False
        self.started_at = time.time()
        self._t0: Optional[float] = time.perf_counter()
        self.duration: Optional[float] = None

    def end(self) -> None:
        """Stamp the duration (idempotent)."""
        if self.duration is None and self._t0 is not None:
            self.duration = time.perf_counter() - self._t0

    def child_seconds(self) -> float:
        """Wall time covered by direct children (ended ones)."""
        return sum(c.duration or 0.0 for c in self.children)

    def find(self, name: str) -> List["Span"]:
        """Every descendant (and self) named ``name``, preorder."""
        found = [self] if self.name == name else []
        for child in self.children:
            found.extend(child.find(name))
        return found

    def to_dict(self) -> Dict[str, Any]:
        """The span tree as a JSON-safe nested dict."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "started_at": self.started_at,
            "seconds": self.duration,
            "remote": self.remote,
            "tags": dict(self.tags),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        seconds = "open" if self.duration is None else f"{self.duration:.6f}s"
        return f"Span({self.name!r}, {seconds}, children={len(self.children)})"


def current_span() -> Optional[Span]:
    """The innermost span open on this thread/context (None outside one)."""
    return _CURRENT.get()


@contextmanager
def trace(
    name: str,
    sink: Optional[Callable[[Span], None]] = None,
    **tags: Any,
) -> Iterator[Span]:
    """Open a span named ``name`` for the ``with`` body.

    Nested calls build the tree automatically.  When the span is a root
    (no enclosing span), ``sink`` is called with the finished span —
    errors raised by the body still reach the sink, so slow *failing*
    requests are logged too.
    """
    parent = _CURRENT.get()
    span = Span(
        name,
        trace_id=parent.trace_id if parent is not None else None,
        parent_id=parent.span_id if parent is not None else None,
        tags=tags,
    )
    token = _CURRENT.set(span)
    try:
        yield span
    finally:
        span.end()
        _CURRENT.reset(token)
        if parent is not None:
            parent.children.append(span)
        elif sink is not None:
            try:
                sink(span)
            except Exception:
                pass  # observability must never fail the request


@contextmanager
def stage(name: str, **tags: Any) -> Iterator[Optional[Span]]:
    """A child span — recorded only if a request span is already open.

    Library code calls this on every hot path; when nothing is tracing
    (serial engines outside the service) the cost is one contextvar read.
    """
    if _CURRENT.get() is None:
        yield None
        return
    with trace(name, **tags) as span:
        yield span


# -- fork-boundary propagation -------------------------------------------------


def propagation() -> Optional[Dict[str, str]]:
    """The current span as a picklable wire context (None when not tracing).

    Pass this into a worker-pool task; the worker hands it to
    :func:`remote_record` so its timing can be grafted back.
    """
    span = _CURRENT.get()
    if span is None:
        return None
    return {"trace_id": span.trace_id, "span_id": span.span_id}


def remote_record(
    name: str,
    seconds: float,
    context: Optional[Dict[str, str]],
    **tags: Any,
) -> Optional[Dict[str, Any]]:
    """Worker-side: package a self-measured duration for the parent.

    Returns ``None`` when no context was propagated (nobody is tracing),
    so tasks can pass the result straight back unconditionally.
    """
    if context is None:
        return None
    return {
        "name": name,
        "seconds": float(seconds),
        "trace_id": context.get("trace_id"),
        "parent_id": context.get("span_id"),
        "tags": {**tags, "pid": os.getpid()},
    }


def attach_remote(record: Optional[Dict[str, Any]]) -> Optional[Span]:
    """Parent-side: graft a worker's :func:`remote_record` onto the current
    span as a pre-measured remote child.  No-op outside a trace or for
    ``None`` records."""
    parent = _CURRENT.get()
    if parent is None or not record:
        return None
    span = Span(
        str(record.get("name", "remote")),
        trace_id=parent.trace_id,
        parent_id=parent.span_id,
        tags=record.get("tags") or {},
    )
    span.remote = True
    span._t0 = None
    span.duration = float(record.get("seconds", 0.0))
    parent.children.append(span)
    return span


# -- root-span retention -------------------------------------------------------


class TraceBuffer:
    """A bounded ring of recent root spans (request span trees).

    The engine keeps one per server so ``status``/tests can inspect the
    stage breakdown of recent requests without any external collector.
    """

    def __init__(self, maxlen: int = 64) -> None:
        self._lock = threading.Lock()
        self._spans: Deque[Span] = deque(maxlen=max(1, int(maxlen)))
        self.recorded = 0

    def record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)
            self.recorded += 1

    def spans(self) -> List[Span]:
        """Retained root spans, oldest first."""
        with self._lock:
            return list(self._spans)

    def snapshot(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Retained span trees as JSON-safe dicts, newest last."""
        spans = self.spans()
        if limit is not None:
            limit = int(limit)
            spans = spans[-limit:] if limit > 0 else []
        return [span.to_dict() for span in spans]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)
