"""The concordance function of Eq. 1.

Two reference nodes are concordant (+1) when both events' densities move in
the same direction between their vicinities, discordant (−1) when the
densities move in opposite directions, and tied (0) when either density is
unchanged.  The functions here are the small, exactly-testable building
blocks; the estimators use the vectorised forms in :mod:`repro.stats.kendall`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import EstimationError


def concordance(density_a_i: float, density_a_j: float,
                density_b_i: float, density_b_j: float) -> int:
    """``c(r_i, r_j)`` of Eq. 1 from the four densities."""
    product = (density_a_i - density_a_j) * (density_b_i - density_b_j)
    if product > 0:
        return 1
    if product < 0:
        return -1
    return 0


def concordance_counts(densities_a: np.ndarray,
                       densities_b: np.ndarray) -> Tuple[int, int, int]:
    """Counts of (concordant, discordant, tied) pairs over all i<j.

    Useful for diagnostics and tests; the estimators only need the difference
    ``concordant − discordant``, which they compute without materialising the
    counts.  Derived from the tie-aware merge-sort kernel
    (:func:`repro.stats.fast_kendall.concordance_counts`) in O(n log n) time
    and O(n) memory — the historical implementation materialised the n×n
    sign matrices *plus* an ``np.triu_indices`` index block.
    """
    a = np.asarray(densities_a, dtype=float)
    b = np.asarray(densities_b, dtype=float)
    if a.shape != b.shape or a.ndim != 1:
        raise EstimationError("density vectors must be 1-D and of equal length")
    if a.size < 2:
        raise EstimationError("at least two reference nodes are required")
    from repro.stats.fast_kendall import concordance_counts as fast_counts

    return fast_counts(a, b)
