"""TESC estimators: the plain sampled statistic ``t`` and the
importance-weighted statistic ``t̃``.

Both estimators consume density vectors (and, for ``t̃``, per-node sampling
weights) and return an :class:`EstimateComponents` carrying the estimate, the
tie-corrected null standard deviation and the z-score of Eq. 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import EstimationError, InsufficientSampleError
from repro.stats.fast_kendall import concordance_sum, dense_ranks
from repro.stats.kendall import pair_concordance_sum, weighted_pair_concordance
from repro.stats.ties import degenerate_ties, tie_corrected_sigma, tie_group_sizes


@dataclass(frozen=True)
class EstimateComponents:
    """All the numbers produced when estimating TESC from a sample.

    Attributes
    ----------
    estimate:
        The sampled Kendall statistic — ``t(a, b)`` (Eq. 4) for the plain
        estimator or ``t̃(a, b)`` (Eq. 8) for the importance-weighted one.
    z_score:
        The standardised statistic of Eq. 7 (0.0 when the null variance is
        degenerate, i.e. one of the density vectors is a single tie).
    num_reference_nodes:
        Number of distinct reference nodes the estimate was computed from.
    concordance_sum:
        ``S`` — the (possibly weighted) numerator of the statistic.
    null_sigma:
        Tie-corrected standard deviation of the unweighted numerator under
        the null hypothesis (Eq. 6), used to standardise.
    ties_a / ties_b:
        Tie-group sizes of the two density vectors, as used in Eq. 6.
    degenerate:
        True when either density vector is constant so no inference is
        possible.
    """

    estimate: float
    z_score: float
    num_reference_nodes: int
    concordance_sum: float
    null_sigma: float
    ties_a: tuple
    ties_b: tuple
    degenerate: bool


def _validate_densities(densities_a: Sequence[float],
                        densities_b: Sequence[float]) -> tuple:
    a = np.asarray(densities_a, dtype=float)
    b = np.asarray(densities_b, dtype=float)
    if a.ndim != 1 or b.ndim != 1:
        raise EstimationError("density vectors must be 1-D")
    if a.size != b.size:
        raise EstimationError("density vectors must have the same length")
    if a.size < 2:
        raise InsufficientSampleError(
            f"need at least 2 reference nodes to form a pair, got {a.size}"
        )
    return a, b


def plain_estimate(densities_a: Sequence[float],
                   densities_b: Sequence[float],
                   kernel: str = "auto",
                   crossover: Optional[int] = None) -> EstimateComponents:
    """The sampled Kendall statistic ``t(a, b)`` of Eq. 4 with its z-score.

    The z-score divides the numerator ``S`` by the tie-corrected null
    standard deviation of Eq. 6 (equivalently: ``t / sigma`` with both
    numerator and denominator scaled by ``n(n-1)/2``).  ``kernel`` and
    ``crossover`` select the concordance kernel (see
    :mod:`repro.stats.fast_kendall`); ``S`` is the same exact integer on
    every path, so the choice never changes the estimate.
    """
    a, b = _validate_densities(densities_a, densities_b)
    n = int(a.size)
    s = float(pair_concordance_sum(a, b, kernel=kernel, crossover=crossover))
    num_pairs = 0.5 * n * (n - 1)
    estimate = s / num_pairs

    if degenerate_ties(a, b):
        return EstimateComponents(
            estimate=estimate,
            z_score=0.0,
            num_reference_nodes=n,
            concordance_sum=s,
            null_sigma=0.0,
            ties_a=tuple(tie_group_sizes(a)),
            ties_b=tuple(tie_group_sizes(b)),
            degenerate=True,
        )

    sigma_numerator = tie_corrected_sigma(a, b)
    z_score = s / sigma_numerator if sigma_numerator > 0 else 0.0
    return EstimateComponents(
        estimate=estimate,
        z_score=float(z_score),
        num_reference_nodes=n,
        concordance_sum=s,
        null_sigma=float(sigma_numerator),
        ties_a=tuple(tie_group_sizes(a)),
        ties_b=tuple(tie_group_sizes(b)),
        degenerate=False,
    )


def importance_weighted_estimate(
    densities_a: Sequence[float],
    densities_b: Sequence[float],
    frequencies: Sequence[int],
    probabilities: Sequence[float],
    kernel: str = "auto",
    crossover: Optional[int] = None,
) -> EstimateComponents:
    """The importance-sampling estimator ``t̃(a, b)`` of Eq. 8 with a z-score.

    Parameters
    ----------
    densities_a, densities_b:
        Densities at the *distinct* sampled reference nodes.
    frequencies:
        ``w_i`` — how many times each node was drawn by the sampler.
    probabilities:
        ``p(r_i) = |V^h_{r_i} ∩ V_{a∪b}| / N_sum`` — each node's probability
        of being produced by one draw of the non-uniform sampler.

    Notes
    -----
    ``t̃`` is a consistent (though biased) estimator of ``τ``.  Following the
    paper, significance is assessed by using ``t̃`` as a surrogate for ``t``:
    the z-score standardises with the same tie-corrected null variance over
    the ``n`` distinct reference nodes.
    """
    a, b = _validate_densities(densities_a, densities_b)
    w = np.asarray(frequencies, dtype=float)
    p = np.asarray(probabilities, dtype=float)
    if w.shape != a.shape or p.shape != a.shape:
        raise EstimationError("frequencies and probabilities must match the densities")
    if np.any(w <= 0):
        raise EstimationError("every sampled node must have frequency >= 1")
    if np.any(p <= 0) or np.any(p > 1):
        raise EstimationError("probabilities must lie in (0, 1]")

    node_weights = w / p
    numerator, denominator = weighted_pair_concordance(
        a, b, node_weights, kernel=kernel, crossover=crossover
    )
    if denominator <= 0:
        raise EstimationError("the weighted pair denominator is not positive")
    estimate = numerator / denominator

    n = int(a.size)
    if degenerate_ties(a, b):
        return EstimateComponents(
            estimate=float(estimate),
            z_score=0.0,
            num_reference_nodes=n,
            concordance_sum=float(numerator),
            null_sigma=0.0,
            ties_a=tuple(tie_group_sizes(a)),
            ties_b=tuple(tie_group_sizes(b)),
            degenerate=True,
        )

    # Use t~ as a surrogate for t: z = t~ / sigma where sigma is the Eq.5/6
    # standard deviation of the *normalised* statistic over n reference nodes.
    sigma_numerator = tie_corrected_sigma(a, b)
    num_pairs = 0.5 * n * (n - 1)
    sigma_t = sigma_numerator / num_pairs if num_pairs > 0 else 0.0
    z_score = estimate / sigma_t if sigma_t > 0 else 0.0
    return EstimateComponents(
        estimate=float(estimate),
        z_score=float(z_score),
        num_reference_nodes=n,
        concordance_sum=float(numerator),
        null_sigma=float(sigma_numerator),
        ties_a=tuple(tie_group_sizes(a)),
        ties_b=tuple(tie_group_sizes(b)),
        degenerate=False,
    )


class PairEstimateBatcher:
    """Plain estimates for many event pairs sharing density-matrix columns.

    The per-event state worth amortising across pairs is the *order/tie
    structure* of that event's density column.  When ranking many pairs over
    a shared reference sample (:class:`~repro.core.batch.BatchTescEngine`),
    each event's density row is rank-encoded once (one ``O(n log n)``
    argsort, ``O(n)`` memory) and the rank vector is reused by every pair
    the event participates in: restricting ranks to a pair's population is
    an ``O(n)`` gather, and the concordance kernel runs on the restricted
    ranks.  This replaces the historical per-event ``O(n²)`` sign-matrix
    cache — at n=900 that cache cost ~0.8 MB per event; at n=100k it would
    have cost ~10 GB per event, while a rank vector stays at 8n bytes.

    Parameters
    ----------
    density_matrix:
        ``(num_events, n)`` float matrix of densities over the shared
        reference sample (``DensityMatrix.densities``).
    kernel / crossover:
        Concordance-kernel dispatch (see :mod:`repro.stats.fast_kendall`).

    Notes
    -----
    Results are numerically identical to calling :func:`plain_estimate` on
    the corresponding pair of rows (restricted to ``columns`` when given):
    rank encoding preserves every ``sign(x_i - x_j)`` exactly, and all
    kernels return the same integer ``S``.
    """

    def __init__(
        self,
        density_matrix: np.ndarray,
        kernel: str = "auto",
        crossover: Optional[int] = None,
    ) -> None:
        matrix = np.asarray(density_matrix, dtype=float)
        if matrix.ndim != 2:
            raise EstimationError(
                f"density_matrix must be 2-D (events x reference nodes), got shape "
                f"{matrix.shape}"
            )
        self._matrix = matrix
        self._kernel = kernel
        self._crossover = crossover
        self._ranks: Dict[int, np.ndarray] = {}

    @property
    def num_reference_nodes(self) -> int:
        """Number of shared reference-sample columns the batcher ranks over."""
        return int(self._matrix.shape[1])

    def grown(self, density_matrix: np.ndarray) -> "PairEstimateBatcher":
        """A fresh batcher over a column-grown version of this matrix.

        The progressive top-k engine appends reference-node columns between
        rounds; rank vectors encode the order structure of *all* columns, so
        they cannot be patched in place — every cached vector goes stale the
        moment a column arrives.  This constructor makes the round hand-off
        explicit: it validates that the old matrix is a column prefix of the
        new one (same event rows, old columns bit-identical), then returns a
        new batcher whose rank vectors will be re-encoded lazily for exactly
        the rows the surviving pairs still touch.
        """
        matrix = np.asarray(density_matrix, dtype=float)
        old = self._matrix
        if (
            matrix.ndim != 2
            or matrix.shape[0] != old.shape[0]
            or matrix.shape[1] < old.shape[1]
            or not np.array_equal(matrix[:, : old.shape[1]], old)
        ):
            raise EstimationError(
                "grown() needs a matrix whose column prefix is this batcher's "
                f"matrix; got shape {matrix.shape} over {old.shape}"
            )
        return PairEstimateBatcher(
            matrix, kernel=self._kernel, crossover=self._crossover
        )

    def _rank_vector(self, row: int) -> np.ndarray:
        """Dense ranks of one density row, computed once and cached (O(n))."""
        cached = self._ranks.get(row)
        if cached is None:
            cached = dense_ranks(self._matrix[row])
            self._ranks[row] = cached
        return cached

    def screen_pair(
        self, row_a: int, row_b: int, columns: Optional[np.ndarray] = None
    ) -> Tuple[float, int]:
        """Just ``(estimate, num_reference_nodes)`` for a pair — no inference.

        The progressive top-k engine's pruning rounds only need each pair's
        point estimate and restricted sample size to form confidence bounds;
        the tie statistics, null sigma and z-score of
        :meth:`estimate_pair` are several extra sorts per pair that the
        screening loop deliberately skips (they are computed once, on the
        full-budget sample, for the pairs that survive).  The returned
        estimate is the exact same number :meth:`estimate_pair` would report.
        """
        a = self._rank_vector(row_a)
        b = self._rank_vector(row_b)
        if columns is not None:
            a = a[columns]
            b = b[columns]
        n = int(a.size)
        if n < 2:
            raise InsufficientSampleError(
                f"need at least 2 reference nodes to form a pair, got {n}"
            )
        s = concordance_sum(a, b, kernel=self._kernel, crossover=self._crossover)
        return s / (0.5 * n * (n - 1)), n

    def estimate_pair(
        self, row_a: int, row_b: int, columns: Optional[np.ndarray] = None
    ) -> EstimateComponents:
        """:func:`plain_estimate` for rows ``(row_a, row_b)``.

        ``columns`` optionally restricts the estimate to a subset of the
        shared reference sample (the pair's own reference population); the
        cached rank vectors are gathered rather than recomputed (restricted
        ranks are no longer dense, but order and ties — all the concordance
        kernels consume — are preserved exactly).
        """
        a = self._rank_vector(row_a)
        b = self._rank_vector(row_b)
        if columns is not None:
            columns = np.asarray(columns, dtype=np.int64)
            a = a[columns]
            b = b[columns]
        n = int(a.size)
        if n < 2:
            raise InsufficientSampleError(
                f"need at least 2 reference nodes to form a pair, got {n}"
            )
        s = concordance_sum(a, b, kernel=self._kernel, crossover=self._crossover)
        num_pairs = 0.5 * n * (n - 1)
        estimate = s / num_pairs

        if degenerate_ties(a, b):
            return EstimateComponents(
                estimate=estimate,
                z_score=0.0,
                num_reference_nodes=n,
                concordance_sum=s,
                null_sigma=0.0,
                ties_a=tuple(tie_group_sizes(a)),
                ties_b=tuple(tie_group_sizes(b)),
                degenerate=True,
            )

        sigma_numerator = tie_corrected_sigma(a, b)
        z_score = s / sigma_numerator if sigma_numerator > 0 else 0.0
        return EstimateComponents(
            estimate=estimate,
            z_score=float(z_score),
            num_reference_nodes=n,
            concordance_sum=s,
            null_sigma=float(sigma_numerator),
            ties_a=tuple(tie_group_sizes(a)),
            ties_b=tuple(tie_group_sizes(b)),
            degenerate=False,
        )


def exact_tau(densities_a: Sequence[float],
              densities_b: Sequence[float]) -> float:
    """``τ(a, b)`` of Eq. 3 computed over *all* reference nodes.

    Identical arithmetic to :func:`plain_estimate` but named separately so
    call sites make clear they are using the exhaustive population statistic
    rather than a sample estimate.
    """
    a, b = _validate_densities(densities_a, densities_b)
    n = int(a.size)
    return float(pair_concordance_sum(a, b)) / (0.5 * n * (n - 1))


def variance_upper_bound(tau: float, sample_size: int) -> float:
    """The paper's bound ``Var(t) <= 2 (1 - τ²) / n`` (Section 3.1).

    Used to argue that a moderate ``n`` suffices regardless of how large the
    reference population ``N`` is — and by the progressive top-k engine to
    derive per-round confidence half-widths.  ``sample_size`` must be at
    least 2: the statistic ``t`` is undefined on fewer than two reference
    nodes (no pairs exist), so the formula would return a meaningless value
    for ``n = 1`` — the progressive engine's tiny first rounds hit exactly
    this edge, hence the hard validation.
    """
    if sample_size < 2:
        raise ValueError(
            "variance_upper_bound needs sample_size >= 2 (the Kendall "
            f"statistic is undefined on fewer than two reference nodes), "
            f"got {sample_size}"
        )
    if not -1.0 <= tau <= 1.0:
        raise EstimationError(f"tau must lie in [-1, 1], got {tau}")
    return 2.0 * (1.0 - tau * tau) / sample_size
