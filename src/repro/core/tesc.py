"""The TESC tester: the paper's end-to-end testing framework.

:class:`TescTester` wires together the three phases of the framework
(Section 4.4): reference-node sampling, event-density computation and
measure/significance computation, and returns a :class:`TescResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import TescConfig
from repro.core.density import DensityComputer
from repro.core.estimators import (
    EstimateComponents,
    importance_weighted_estimate,
    plain_estimate,
)
from repro.events.attributed_graph import AttributedGraph
from repro.exceptions import InsufficientSampleError
from repro.sampling.base import ReferenceSample
from repro.sampling.registry import create_sampler
from repro.stats.hypothesis import CorrelationVerdict, SignificanceResult, decide
from repro.utils.timing import Timer


@dataclass(frozen=True)
class TescResult:
    """Everything a TESC test produces.

    Attributes
    ----------
    event_a / event_b:
        The two events tested.
    vicinity_level:
        The level ``h`` the test was run at.
    score:
        The estimated correlation score (``t`` or ``t̃`` in [-1, 1]).
    z_score / p_value:
        Significance of the score under the null hypothesis.
    verdict:
        Positive, negative, or independent (at the configured ``alpha``).
    sample:
        The reference sample used (nodes, weights, sampling cost).
    components:
        The raw estimator output (ties, null sigma, ...).
    timings:
        Seconds spent in each phase: ``sampling``, ``densities``, ``measure``.
    """

    event_a: str
    event_b: str
    vicinity_level: int
    score: float
    z_score: float
    p_value: float
    verdict: CorrelationVerdict
    significance: SignificanceResult
    sample: ReferenceSample
    components: EstimateComponents
    timings: dict

    @property
    def significant(self) -> bool:
        """Whether the events were declared correlated."""
        return self.verdict is not CorrelationVerdict.INDEPENDENT

    @property
    def num_reference_nodes(self) -> int:
        """Number of distinct reference nodes used."""
        return self.components.num_reference_nodes

    def __str__(self) -> str:
        return (
            f"TESC({self.event_a!r} vs {self.event_b!r}, h={self.vicinity_level}): "
            f"score={self.score:+.4f}, z={self.z_score:+.2f}, "
            f"p={self.p_value:.2e}, verdict={self.verdict.value}"
        )


class TescTester:
    """Run TESC significance tests over an :class:`AttributedGraph`.

    The tester caches the density computer and any vicinity index across
    calls, so testing many event pairs on the same graph (Tables 1–5) only
    pays graph-preparation costs once.

    Examples
    --------
    >>> from repro.graph.generators import erdos_renyi_graph
    >>> from repro.events import AttributedGraph
    >>> graph = erdos_renyi_graph(300, 0.02, random_state=7)
    >>> attributed = AttributedGraph(graph, {"a": range(0, 40), "b": range(20, 60)})
    >>> tester = TescTester(attributed, TescConfig(vicinity_level=1, random_state=7))
    >>> result = tester.test("a", "b")
    >>> -1.0 <= result.score <= 1.0
    True
    """

    def __init__(self, attributed: AttributedGraph,
                 config: Optional[TescConfig] = None) -> None:
        self.attributed = attributed
        self.config = config if config is not None else TescConfig()
        self._density_computer = DensityComputer(attributed.csr)

    def test(self, event_a: str, event_b: str,
             config: Optional[TescConfig] = None) -> TescResult:
        """Test the pair ``(event_a, event_b)`` and return a :class:`TescResult`."""
        cfg = config if config is not None else self.config
        timer = Timer()

        event_nodes = self.attributed.event_union(event_a, event_b)
        needs_index = cfg.sampler in ("importance", "batch_importance", "reject")
        vicinity_index = (
            self.attributed.vicinity_index(levels=(cfg.vicinity_level,))
            if needs_index
            else None
        )
        sampler = create_sampler(
            cfg.sampler,
            self.attributed.csr,
            vicinity_index=vicinity_index,
            random_state=cfg.random_state,
            batch_per_vicinity=cfg.batch_per_vicinity,
        )

        with timer.lap("sampling"):
            sample = sampler.sample(event_nodes, cfg.vicinity_level, cfg.sample_size)
        if sample.num_distinct < 2:
            raise InsufficientSampleError(
                f"sampler {cfg.sampler!r} produced {sample.num_distinct} reference "
                "nodes; at least two are required"
            )

        with timer.lap("densities"):
            densities_a, densities_b = self._density_computer.density_vectors(
                sample.nodes,
                self.attributed.event_indicator(event_a),
                self.attributed.event_indicator(event_b),
                cfg.vicinity_level,
            )

        with timer.lap("measure"):
            if sample.weighted:
                components = importance_weighted_estimate(
                    densities_a, densities_b,
                    sample.frequencies, sample.probabilities,
                    kernel=cfg.kendall_kernel, crossover=cfg.kendall_crossover,
                )
            else:
                components = plain_estimate(
                    densities_a, densities_b,
                    kernel=cfg.kendall_kernel, crossover=cfg.kendall_crossover,
                )
            significance = decide(components.z_score, cfg.alpha, cfg.alternative)

        return TescResult(
            event_a=event_a,
            event_b=event_b,
            vicinity_level=cfg.vicinity_level,
            score=components.estimate,
            z_score=components.z_score,
            p_value=significance.p_value,
            verdict=significance.verdict,
            significance=significance,
            sample=sample,
            components=components,
            timings={name: timer.total(name) for name in ("sampling", "densities", "measure")},
        )

    def test_levels(self, event_a: str, event_b: str, levels=(1, 2, 3)) -> dict:
        """Test the same pair at several vicinity levels (as Tables 1–2 report)."""
        return {
            level: self.test(event_a, event_b, self.config.with_level(level))
            for level in levels
        }


def measure_tesc(attributed: AttributedGraph, event_a: str, event_b: str,
                 vicinity_level: int = 1, **config_kwargs) -> TescResult:
    """One-call convenience wrapper around :class:`TescTester`.

    ``config_kwargs`` accepts any :class:`TescConfig` field, e.g.
    ``sample_size=900``, ``sampler="importance"`` or ``random_state=42``.
    """
    config = TescConfig(vicinity_level=vicinity_level, **config_kwargs)
    return TescTester(attributed, config).test(event_a, event_b)
