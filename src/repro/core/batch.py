"""Batch pair-testing and ranking engine.

The paper's headline workloads (Tables 1–5, keyword correlation, intrusion
alerts) all test *many* event pairs on one graph, yet
:meth:`~repro.core.tesc.TescTester.test` pays sampling, vicinity-index and
density costs once per pair.  :class:`BatchTescEngine` amortises that work
across a whole pair set:

1. **One shared reference sample per (event-universe, level).**  The engine
   samples the reference population of the *union* of all events being
   ranked, through a :class:`~repro.sampling.cache.CachingSampler`, so the
   sampling pass (and the vicinity index a sampler may need) runs at most
   once per level no matter how many pairs are tested.
2. **One density pass for all events.**
   :meth:`~repro.core.density.DensityComputer.density_matrix` performs one
   h-hop BFS per reference node and reads every event's density off the same
   vicinity — ``n`` BFS total instead of ``n`` per pair.
3. **Per-pair populations recovered for free.**  Hop distance is symmetric,
   so a reference node lies in a pair's population ``V^h_{a∪b}`` exactly
   when its vicinity contains an occurrence of either event — i.e. when one
   of the counts the density pass already produced is positive.  Restricted
   to those columns, a uniform shared sample is a uniform sample of the
   pair's own population, and in exhaustive mode the per-pair results are
   *numerically identical* to looped :class:`~repro.core.tesc.TescTester`
   runs.
4. **Shared estimator state.**  Each event's density column is rank-encoded
   once by :class:`~repro.core.estimators.PairEstimateBatcher` (an ``O(n)``
   rank vector per event) and gathered per pair; the per-pair concordance
   runs through the size-dispatched kernels of
   :mod:`repro.stats.fast_kendall` (``O(n log n)`` merge sort above the
   crossover, the vectorised naive kernel below it).

The entry points are :meth:`BatchTescEngine.rank_pairs` (object API) and
:func:`rank_pairs` (one-call convenience), both returning a
:class:`PairRanking`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.config import TescConfig
from repro.core.density import DensityComputer, DensityMatrix
from repro.core.estimators import (
    EstimateComponents,
    PairEstimateBatcher,
    plain_estimate,
)
from repro.events.attributed_graph import AttributedGraph
from repro.exceptions import ConfigurationError, InsufficientSampleError
from repro.obs.trace import stage
from repro.sampling.base import ReferenceSample
from repro.sampling.cache import CachingSampler, event_nodes_fingerprint
from repro.sampling.registry import create_sampler
from repro.stats.hypothesis import CorrelationVerdict, decide
from repro.utils.tables import TextTable
from repro.utils.timing import Timer

#: Ranking keys accepted by :meth:`BatchTescEngine.rank_pairs`.
SORT_KEYS = ("score", "z_score", "abs_z", "p_value")

#: Samplers whose draws carry importance weights; those weights are defined
#: relative to the population they were drawn from and cannot be restricted
#: to per-pair populations, so the batch engine rejects them up front.
WEIGHTED_SAMPLERS = ("importance", "batch_importance")

#: Samplers that need the ``|V^h_v|`` vicinity-size index to draw.
INDEXED_SAMPLERS = ("importance", "batch_importance", "reject")

#: How many density matrices (each with its per-event O(n) rank vectors)
#: an engine retains before evicting the oldest.
MAX_CACHED_MATRICES = 8


@dataclass(frozen=True)
class RankedPair:
    """One event pair's result inside a :class:`PairRanking`.

    Attributes
    ----------
    rank:
        1-based position in the ranking order.
    event_a / event_b:
        The tested pair.
    score / z_score / p_value / verdict:
        Same semantics as on :class:`~repro.core.tesc.TescResult`.
    num_reference_nodes:
        Size of the pair's restricted reference population within the shared
        sample.
    degenerate:
        True when a density vector was constant (z-score pinned to 0).
    insufficient:
        True when fewer than two shared reference nodes fell inside the
        pair's population, so no estimate was possible (score/z reported as
        0 and verdict independent).
    """

    rank: int
    event_a: str
    event_b: str
    score: float
    z_score: float
    p_value: float
    verdict: CorrelationVerdict
    num_reference_nodes: int
    degenerate: bool = False
    insufficient: bool = False

    @property
    def significant(self) -> bool:
        """Whether the pair was declared correlated."""
        return self.verdict is not CorrelationVerdict.INDEPENDENT

    @property
    def events(self) -> Tuple[str, str]:
        """The pair as a tuple."""
        return (self.event_a, self.event_b)

    def __str__(self) -> str:
        return (
            f"#{self.rank} ({self.event_a!r}, {self.event_b!r}): "
            f"score={self.score:+.4f}, z={self.z_score:+.2f}, "
            f"verdict={self.verdict.value}"
        )


@dataclass
class BatchStats:
    """Cost accounting for batch ranking.

    Each :class:`PairRanking` carries the stats of the call that produced it;
    :attr:`BatchTescEngine.stats` accumulates the same counters over the
    engine's lifetime.  The point of the batch engine is that
    ``samples_drawn`` and ``density_bfs_calls`` stay independent of the
    number of pairs; these counters make that claim checkable (and are
    asserted on in the tests).
    """

    num_events: int = 0
    num_pairs: int = 0
    samples_drawn: int = 0
    sample_cache_hits: int = 0
    density_passes: int = 0
    density_bfs_calls: int = 0
    workers: int = 1
    shards: int = 1
    timings: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class PairRanking:
    """Ranked results for a batch of event pairs.

    Iterable and indexable like a sequence of :class:`RankedPair` (best pair
    first, according to the requested sort key).
    """

    pairs: Tuple[RankedPair, ...]
    vicinity_level: int
    sort_by: str
    alpha: float
    sample: ReferenceSample
    stats: BatchStats

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self):
        return iter(self.pairs)

    def __getitem__(self, index):
        return self.pairs[index]

    def top(self, k: int) -> Tuple[RankedPair, ...]:
        """The ``k`` best-ranked pairs."""
        return self.pairs[: max(int(k), 0)]

    def significant_pairs(self) -> Tuple[RankedPair, ...]:
        """Only the pairs declared correlated (positive or negative)."""
        return tuple(pair for pair in self.pairs if pair.significant)

    def verdict_counts(self) -> Dict[str, int]:
        """``{verdict value: count}`` over the ranking."""
        counts = {verdict.value: 0 for verdict in CorrelationVerdict}
        for pair in self.pairs:
            counts[pair.verdict.value] += 1
        return counts

    def as_records(self) -> List[Dict[str, object]]:
        """Plain dict-per-pair representation (for JSON/tabular export)."""
        return [
            {
                "rank": pair.rank,
                "event_a": pair.event_a,
                "event_b": pair.event_b,
                "score": pair.score,
                "z_score": pair.z_score,
                "p_value": pair.p_value,
                "verdict": pair.verdict.value,
                "num_reference_nodes": pair.num_reference_nodes,
            }
            for pair in self.pairs
        ]

    def render(self, markdown: bool = False) -> str:
        """Human-readable ranking table."""
        table = TextTable(
            ["rank", "event a", "event b", "score", "z", "p-value", "verdict", "n"]
        )
        for pair in self.pairs:
            table.add_row(
                [
                    pair.rank,
                    pair.event_a,
                    pair.event_b,
                    f"{pair.score:+.4f}",
                    f"{pair.z_score:+.2f}",
                    f"{pair.p_value:.2e}",
                    pair.verdict.value,
                    pair.num_reference_nodes,
                ]
            )
        return table.render(markdown=markdown)

    def __str__(self) -> str:
        return self.render()


PairSpec = Union[str, Sequence[Tuple[str, str]]]


def ensure_uniform_sampler(cfg: TescConfig, caller: str = "the batch engine") -> None:
    """Reject sampler configs whose draws carry importance weights.

    Weighted draws are defined relative to the population they were drawn
    from and cannot be restricted to per-pair populations, so every engine
    built on a shared sample (batch, parallel, streaming, progressive top-k)
    rejects them up front through this guard.
    """
    if cfg.sampler in WEIGHTED_SAMPLERS:
        raise ConfigurationError(
            f"sampler {cfg.sampler!r} produces importance-weighted samples, "
            f"which {caller} cannot restrict to per-pair populations; "
            "use a uniform sampler (batch_bfs, exhaustive, whole_graph, reject) "
            "or per-pair TescTester"
        )


def ensure_uniform_sample(sample: ReferenceSample, sampler_name: str) -> None:
    """Reject weighted or degenerate samples a custom sampler handed back."""
    if sample.weighted:
        # Custom-registered samplers can still hand back weighted draws.
        raise ConfigurationError(
            f"sampler {sampler_name!r} produced an importance-weighted sample, "
            "which shared-sample engines cannot restrict to per-pair populations"
        )
    if sample.num_distinct < 2:
        raise InsufficientSampleError(
            f"sampler {sampler_name!r} produced {sample.num_distinct} reference "
            "nodes; at least two are required"
        )


def make_config_sampler(attributed: AttributedGraph, cfg: TescConfig):
    """A fresh sampler for ``cfg`` over ``attributed`` (freshly seeded RNG).

    The single place that knows how a :class:`~repro.core.config.TescConfig`
    maps to a sampler instance (registry lookup, vicinity-index wiring,
    ``batch_per_vicinity``).  The batch engine wraps the result in a
    :class:`~repro.sampling.cache.CachingSampler`; the streaming ranker's
    :class:`~repro.sampling.cache.SampleMemo` calls this on every miss —
    sharing the factory is what keeps an incremental redraw bit-identical
    to a from-scratch engine's draw.
    """
    vicinity_index = (
        attributed.vicinity_index(levels=(cfg.vicinity_level,))
        if cfg.sampler in INDEXED_SAMPLERS
        else None
    )
    return create_sampler(
        cfg.sampler,
        attributed.csr,
        vicinity_index=vicinity_index,
        random_state=cfg.random_state,
        batch_per_vicinity=cfg.batch_per_vicinity,
    )


def event_universe(attributed: AttributedGraph, events: Sequence[str]) -> np.ndarray:
    """The union node set ``V_U`` of the given events, sorted and distinct.

    Shared by the batch engine and the streaming ranker so both derive the
    sampling universe with identical ordering.
    """
    arrays = [attributed.event_nodes(event) for event in events]
    return np.unique(np.concatenate(arrays)) if arrays else np.empty(0, np.int64)


def resolve_pair_spec(event_names: Sequence[str], pairs: PairSpec) -> List[Tuple[str, str]]:
    """Normalise a :data:`PairSpec` into an explicit ``(a, b)`` pair list.

    ``"all"`` expands to every unordered pair of ``event_names``; explicit
    sequences are validated (two distinct events per pair, at least one
    pair).  Shared by :class:`BatchTescEngine`, the parallel engine and the
    streaming :class:`~repro.streaming.ranker.ContinuousRanker`.
    """
    if isinstance(pairs, str):
        if pairs != "all":
            raise ConfigurationError(
                f'pairs must be "all" or a sequence of (event, event) tuples, '
                f"got {pairs!r}"
            )
        names = list(event_names)
        if len(names) < 2:
            raise ConfigurationError(
                f'pairs="all" needs at least two events on the graph, found '
                f"{len(names)}"
            )
        return list(itertools.combinations(names, 2))
    resolved: List[Tuple[str, str]] = []
    for pair in pairs:
        pair = tuple(pair)
        if len(pair) != 2:
            raise ConfigurationError(
                f"each pair must name exactly two events, got {pair!r}"
            )
        event_a, event_b = str(pair[0]), str(pair[1])
        if event_a == event_b:
            raise ConfigurationError(
                f"cannot test an event against itself: {event_a!r}"
            )
        resolved.append((event_a, event_b))
    if not resolved:
        raise ConfigurationError("at least one event pair is required")
    return resolved


def estimate_pair_list(
    pair_list: Sequence[Tuple[str, str]],
    row_of: Dict[str, int],
    matrix: DensityMatrix,
    batcher: Optional[PairEstimateBatcher],
    cfg: TescConfig,
    on_insufficient: str,
) -> List[RankedPair]:
    """Per-pair estimates over a shared density matrix (unranked).

    This is the per-pair half of :meth:`BatchTescEngine.rank_pairs`, exposed
    at module level so the parallel engine's worker shards and the streaming
    ranker run exactly the same arithmetic on their slice of the pair
    workload.

    ``batcher=None`` computes each pair directly with
    :func:`~repro.core.estimators.plain_estimate` on the restricted density
    vectors instead of gathering shared rank vectors.  The two paths are
    numerically identical (asserted in the estimator tests); the batcher
    amortises the rank encoding across many pairs sharing events, the plain
    path wins when only a few pairs are being (re-)scored — the streaming
    ranker's common case.  Both dispatch the concordance kernel through
    ``cfg.kendall_kernel`` / ``cfg.kendall_crossover``.
    """
    results: List[RankedPair] = []
    for event_a, event_b in pair_list:
        row_a, row_b = row_of[event_a], row_of[event_b]
        columns = matrix.pair_rows(row_a, row_b)
        if columns.size < 2:
            if on_insufficient == "raise":
                raise InsufficientSampleError(
                    f"pair ({event_a!r}, {event_b!r}) has only "
                    f"{columns.size} reference nodes in the shared sample"
                )
            results.append(
                RankedPair(
                    rank=0, event_a=event_a, event_b=event_b,
                    score=0.0, z_score=0.0, p_value=1.0,
                    verdict=CorrelationVerdict.INDEPENDENT,
                    num_reference_nodes=int(columns.size),
                    degenerate=True, insufficient=True,
                )
            )
            continue
        if batcher is None:
            components: EstimateComponents = plain_estimate(
                matrix.densities[row_a, columns],
                matrix.densities[row_b, columns],
                kernel=cfg.kendall_kernel,
                crossover=cfg.kendall_crossover,
            )
        else:
            components = batcher.estimate_pair(row_a, row_b, columns)
        significance = decide(components.z_score, cfg.alpha, cfg.alternative)
        results.append(
            RankedPair(
                rank=0, event_a=event_a, event_b=event_b,
                score=components.estimate,
                z_score=components.z_score,
                p_value=significance.p_value,
                verdict=significance.verdict,
                num_reference_nodes=components.num_reference_nodes,
                degenerate=components.degenerate,
            )
        )
    return results


class BatchTescEngine:
    """Amortised TESC testing and ranking over many event pairs.

    Parameters
    ----------
    attributed:
        The attributed graph to test on.
    config:
        Default :class:`~repro.core.config.TescConfig`; individual
        :meth:`rank_pairs` calls may override it.  Only *uniform* samplers
        ("batch_bfs", "exhaustive", "whole_graph", "reject") are supported:
        importance weights are defined relative to the population they were
        drawn from and do not survive the per-pair restriction.

    Examples
    --------
    >>> from repro.graph.generators import community_ring_graph
    >>> from repro.events import AttributedGraph
    >>> graph = community_ring_graph(8, 40, 5.0, 10, random_state=3)
    >>> attributed = AttributedGraph(
    ...     graph, {"a": range(0, 30), "b": range(10, 40), "c": range(160, 200)}
    ... )
    >>> engine = BatchTescEngine(attributed, TescConfig(sample_size=120, random_state=3))
    >>> ranking = engine.rank_pairs("all")
    >>> len(ranking)
    3
    >>> ranking[0].rank
    1
    """

    def __init__(self, attributed: AttributedGraph,
                 config: Optional[TescConfig] = None) -> None:
        from repro.deprecation import warn_deprecated_construction

        warn_deprecated_construction(
            "BatchTescEngine", "open_session(graph, config).rank(...)"
        )
        self.attributed = attributed
        self.config = config if config is not None else TescConfig()
        self._density_computer = DensityComputer(attributed.csr)
        self._samplers: Dict[tuple, CachingSampler] = {}
        self._matrices: Dict[tuple, DensityMatrix] = {}
        self._batchers: Dict[tuple, PairEstimateBatcher] = {}
        self.stats = BatchStats()

    # -- pair/universe resolution ---------------------------------------------

    def _resolve_pairs(self, pairs: PairSpec) -> List[Tuple[str, str]]:
        return resolve_pair_spec(self.attributed.event_names(), pairs)

    def _universe(self, events: Sequence[str]) -> np.ndarray:
        return event_universe(self.attributed, events)

    # -- shared-resource caches -----------------------------------------------

    def _sampler_key(self, cfg: TescConfig) -> tuple:
        seed = cfg.random_state
        seed_token = seed if seed is None or isinstance(seed, int) else id(seed)
        return (cfg.sampler, cfg.batch_per_vicinity, seed_token)

    def _sampler(self, cfg: TescConfig) -> CachingSampler:
        key = self._sampler_key(cfg)
        cached = self._samplers.get(key)
        if cached is None:
            cached = CachingSampler(make_config_sampler(self.attributed, cfg))
            self._samplers[key] = cached
        return cached

    def _shared_sample(self, cfg: TescConfig, universe: np.ndarray,
                       timer: Timer, call_stats: BatchStats
                       ) -> Tuple[ReferenceSample, tuple]:
        ensure_uniform_sampler(cfg)
        sampler = self._sampler(cfg)
        misses_before = sampler.misses
        with timer.lap("sampling"):
            sample = sampler.sample(universe, cfg.vicinity_level, cfg.sample_size)
        if sampler.misses > misses_before:
            call_stats.samples_drawn += 1
        else:
            call_stats.sample_cache_hits += 1
        ensure_uniform_sample(sample, cfg.sampler)
        matrix_key = self._sampler_key(cfg) + (
            event_nodes_fingerprint(universe), cfg.vicinity_level, cfg.sample_size,
        )
        return sample, matrix_key

    def _density_matrix(self, cfg: TescConfig, events: Sequence[str],
                        sample: ReferenceSample, matrix_key: tuple,
                        timer: Timer, call_stats: BatchStats) -> DensityMatrix:
        key = matrix_key + (tuple(events),)
        cached = self._matrices.get(key)
        if cached is None:
            engine = self._density_computer.engine
            bfs_before = engine.bfs_calls
            with timer.lap("densities"):
                indicators = self.attributed.indicator_matrix(events)
                cached = self._density_computer.density_matrix(
                    sample.nodes, indicators, cfg.vicinity_level
                )
            while len(self._matrices) >= MAX_CACHED_MATRICES:
                oldest = next(iter(self._matrices))
                del self._matrices[oldest]
                # Batcher keys extend the matrix key with the kernel choice;
                # drop every batcher built over the evicted matrix.
                for stale in [
                    batcher_key for batcher_key in self._batchers
                    if batcher_key[: len(oldest)] == oldest
                ]:
                    del self._batchers[stale]
            self._matrices[key] = cached
            call_stats.density_passes += 1
            call_stats.density_bfs_calls += engine.bfs_calls - bfs_before
        return cached

    def _batcher(self, matrix: DensityMatrix, key: tuple,
                 cfg: TescConfig) -> PairEstimateBatcher:
        key = key + (cfg.kendall_kernel, cfg.kendall_crossover)
        cached = self._batchers.get(key)
        if cached is None:
            cached = PairEstimateBatcher(
                matrix.densities,
                kernel=cfg.kendall_kernel,
                crossover=cfg.kendall_crossover,
            )
            self._batchers[key] = cached
        return cached

    # -- the public API --------------------------------------------------------

    def rank_pairs(
        self,
        pairs: PairSpec = "all",
        top_k: Optional[int] = None,
        sort_by: str = "score",
        config: Optional[TescConfig] = None,
        on_insufficient: str = "keep",
    ) -> PairRanking:
        """Test every pair in ``pairs`` and return them ranked.

        Parameters
        ----------
        pairs:
            ``"all"`` for every unordered pair of the graph's events, or an
            explicit sequence of ``(event_a, event_b)`` tuples.
        top_k:
            Keep only the ``k`` best-ranked pairs (all pairs when ``None``).
        sort_by:
            ``"score"`` (default; most attracting first), ``"z_score"``,
            ``"abs_z"`` (most significant in either direction first) or
            ``"p_value"`` (smallest first).
        config:
            Per-call :class:`~repro.core.config.TescConfig` override.
        on_insufficient:
            ``"keep"`` (default) records pairs whose restricted population
            has fewer than two reference nodes as independent with
            ``insufficient=True``; ``"raise"`` raises
            :class:`~repro.exceptions.InsufficientSampleError` instead.
        """
        if sort_by not in SORT_KEYS:
            raise ConfigurationError(
                f"sort_by must be one of {SORT_KEYS}, got {sort_by!r}"
            )
        if on_insufficient not in ("keep", "raise"):
            raise ConfigurationError(
                f'on_insufficient must be "keep" or "raise", got {on_insufficient!r}'
            )
        cfg = config if config is not None else self.config
        timer = Timer()
        call_stats = BatchStats()

        pair_list = self._resolve_pairs(pairs)
        # Sorted row layout so pair sets naming the same events (in any
        # order) share one cached density matrix and rank-vector set.
        events = sorted({event for pair in pair_list for event in pair})
        row_of = {event: row for row, event in enumerate(events)}
        # Touching every indicator up front surfaces unknown events before
        # any sampling work happens.
        self.attributed.indicator_matrix(events)

        universe = self._universe(events)
        with stage("sampling"):
            sample, matrix_key = self._shared_sample(
                cfg, universe, timer, call_stats
            )
        with stage("density"):
            matrix = self._density_matrix(
                cfg, events, sample, matrix_key, timer, call_stats
            )
            batcher = self._batcher(matrix, matrix_key + (tuple(events),), cfg)

        with timer.lap("estimates"), stage("estimate", pairs=len(pair_list)):
            results = self._estimate_pair_list(
                pair_list, row_of, matrix, batcher, cfg, on_insufficient
            )

        ranked = finalise_ranking(results, sort_by, top_k)

        call_stats.num_events = len(events)
        call_stats.num_pairs = len(pair_list)
        for name in ("sampling", "densities", "estimates"):
            call_stats.timings[name] = timer.total(name)
        self._accumulate(call_stats)
        return PairRanking(
            pairs=ranked,
            vicinity_level=cfg.vicinity_level,
            sort_by=sort_by,
            alpha=cfg.alpha,
            sample=sample,
            stats=call_stats,
        )

    def _estimate_pair_list(
        self,
        pair_list: Sequence[Tuple[str, str]],
        row_of: Dict[str, int],
        matrix: DensityMatrix,
        batcher: PairEstimateBatcher,
        cfg: TescConfig,
        on_insufficient: str,
    ) -> List[RankedPair]:
        """Per-pair estimates over a shared density matrix (unranked).

        Delegates to the module-level :func:`estimate_pair_list`, which the
        parallel engine's worker shards and the streaming ranker also call so
        every execution mode runs exactly the same arithmetic.
        """
        return estimate_pair_list(
            pair_list, row_of, matrix, batcher, cfg, on_insufficient
        )

    def estimate_pairs_on_nodes(
        self,
        pairs: PairSpec,
        reference_nodes: np.ndarray,
        config: Optional[TescConfig] = None,
        on_insufficient: str = "keep",
    ) -> List[RankedPair]:
        """Estimate pairs against an externally supplied reference-node set.

        No sampling happens: the caller provides the (already drawn) shared
        reference nodes and this method runs only the density pass and the
        per-pair estimates.  This is the shard entry point of
        :class:`~repro.core.parallel.ParallelBatchTescEngine` — the parent
        process draws one sample and every worker evaluates its pair shard on
        those same nodes, which keeps parallel results bit-identical to the
        serial engine.  Returned pairs are unranked (``rank=0``) and in input
        order.
        """
        cfg = config if config is not None else self.config
        timer = Timer()
        call_stats = BatchStats()

        pair_list = self._resolve_pairs(pairs)
        events = sorted({event for pair in pair_list for event in pair})
        row_of = {event: row for row, event in enumerate(events)}
        self.attributed.indicator_matrix(events)

        nodes = np.unique(np.asarray(reference_nodes, dtype=np.int64))
        sample = ReferenceSample(
            nodes=nodes,
            frequencies=np.ones(nodes.size, dtype=np.int64),
            probabilities=None,
            weighted=False,
            population_size=None,
        )
        matrix_key = self._sampler_key(cfg) + (
            event_nodes_fingerprint(nodes), cfg.vicinity_level, int(nodes.size),
        )
        matrix = self._density_matrix(
            cfg, events, sample, matrix_key, timer, call_stats
        )
        batcher = self._batcher(matrix, matrix_key + (tuple(events),), cfg)
        with timer.lap("estimates"):
            results = self._estimate_pair_list(
                pair_list, row_of, matrix, batcher, cfg, on_insufficient
            )

        call_stats.num_events = len(events)
        call_stats.num_pairs = len(pair_list)
        for name in ("sampling", "densities", "estimates"):
            call_stats.timings[name] = timer.total(name)
        self._accumulate(call_stats)
        return results

    def _accumulate(self, call_stats: BatchStats) -> None:
        """Fold one call's counters into the engine-lifetime :attr:`stats`."""
        self.stats.num_events = call_stats.num_events
        self.stats.num_pairs += call_stats.num_pairs
        self.stats.samples_drawn += call_stats.samples_drawn
        self.stats.sample_cache_hits += call_stats.sample_cache_hits
        self.stats.density_passes += call_stats.density_passes
        self.stats.density_bfs_calls += call_stats.density_bfs_calls
        for name, seconds in call_stats.timings.items():
            self.stats.timings[name] = self.stats.timings.get(name, 0.0) + seconds

def _sort_value(pair: RankedPair, sort_by: str) -> tuple:
    if sort_by == "score":
        primary = -pair.score
    elif sort_by == "z_score":
        primary = -pair.z_score
    elif sort_by == "abs_z":
        primary = -abs(pair.z_score)
    else:  # p_value — most significant first, direction-agnostic
        primary = pair.p_value
    # Deterministic tie-break so equal statistics rank stably.
    return (primary, pair.event_a, pair.event_b)


def finalise_ranking(
    results: Iterable[RankedPair],
    sort_by: str,
    top_k: Optional[int] = None,
) -> Tuple[RankedPair, ...]:
    """Sort unranked pair results and assign 1-based ranks.

    Shared by the serial engine and the parallel engine's merge step: because
    the sort key is a deterministic total order (statistic plus event-name
    tie-break), the final ranking is independent of how the results were
    sharded across workers.
    """
    ordered = sorted(results, key=lambda pair: _sort_value(pair, sort_by))
    if top_k is not None:
        ordered = ordered[: max(int(top_k), 0)]
    return tuple(
        RankedPair(
            rank=position + 1, event_a=pair.event_a, event_b=pair.event_b,
            score=pair.score, z_score=pair.z_score, p_value=pair.p_value,
            verdict=pair.verdict,
            num_reference_nodes=pair.num_reference_nodes,
            degenerate=pair.degenerate, insufficient=pair.insufficient,
        )
        for position, pair in enumerate(ordered)
    )


def rank_pairs(
    attributed: AttributedGraph,
    pairs: PairSpec = "all",
    top_k: Optional[int] = None,
    sort_by: str = "score",
    vicinity_level: int = 1,
    workers: Optional[int] = None,
    **config_kwargs,
) -> PairRanking:
    """One-call convenience wrapper around :class:`BatchTescEngine`.

    ``config_kwargs`` accepts any :class:`~repro.core.config.TescConfig`
    field, e.g. ``sample_size=900``, ``sampler="exhaustive"`` or
    ``random_state=42``.  ``workers`` > 1 shards the pair workload across a
    process pool via :class:`~repro.core.parallel.ParallelBatchTescEngine`;
    the results are identical to the serial engine's.

    Examples
    --------
    >>> from repro.graph.generators import erdos_renyi_graph
    >>> from repro.events import AttributedGraph
    >>> graph = erdos_renyi_graph(300, 0.02, random_state=7)
    >>> attributed = AttributedGraph(
    ...     graph, {"a": range(0, 40), "b": range(20, 60), "c": range(200, 240)}
    ... )
    >>> ranking = rank_pairs(attributed, "all", sample_size=100, random_state=7)
    >>> [pair.rank for pair in ranking]
    [1, 2, 3]
    """
    config = TescConfig(vicinity_level=vicinity_level, **config_kwargs)
    if workers is not None:
        from repro.core.parallel import ParallelBatchTescEngine, resolve_workers

        if resolve_workers(workers) > 1:
            with ParallelBatchTescEngine(attributed, config, workers=workers) as engine:
                return engine.rank_pairs(pairs, top_k=top_k, sort_by=sort_by)
    return BatchTescEngine(attributed, config).rank_pairs(
        pairs, top_k=top_k, sort_by=sort_by
    )
