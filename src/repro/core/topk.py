"""Progressive top-k pair ranking with confidence-bound pruning.

:meth:`~repro.core.batch.BatchTescEngine.rank_pairs` spends the full
``sample_size`` budget on every pair even when the caller only wants the
top-k most correlated ones — an all-pairs scan over ``E`` events pays
``O(E² · budget)`` estimate work.  :class:`ProgressiveTopKEngine` spends the
budget only where it can still change the answer:

1. **One shared sample, grown in geometric prefix rounds.**  The engine
   draws through the prefix-extendable seam of the sampling layer
   (:meth:`~repro.sampling.cache.CachingSampler.growable`): round ``r``'s
   reference nodes are a strict prefix of round ``r + 1``'s, and growing all
   the way to the budget yields exactly the sample a one-shot
   :meth:`~repro.core.batch.BatchTescEngine.rank_pairs` draw would.
2. **Append-only density evaluation.**  Each round BFS-counts only the
   newly revealed reference nodes
   (:meth:`~repro.core.density.DensityComputer.append_columns`), and only
   for events that still appear in a surviving pair.
3. **Confidence-bound pruning.**  After each round every surviving pair's
   Kendall estimate gets a two-sided confidence interval from the variance
   machinery of :mod:`repro.core.estimators`; any pair whose upper bound
   falls strictly below the k-th largest lower bound can no longer reach the
   top-k and is eliminated.  Pairs whose restricted population is still too
   small to estimate are never pruned.
4. **Full-budget finish.**  Only survivors ever see the full sample: their
   final estimates run through the exact same density matrix / rank-vector /
   kernel arithmetic as ``rank_pairs`` (optionally sharded across worker
   processes), so whenever the confidence intervals hold, the returned
   top-k — keys, scores, z-scores, verdicts and ranks — is *identical* to
   ``rank_pairs().top(k)`` (property-tested across samplers and worker
   counts).

The half-width of a round-``r`` interval covers the gap between the round
estimate and the *full-budget* estimate, not just the population value: for
nested uniform subsamples ``Var(t_r − t_full) = Var(t_r) − Var(t_full)``, so
``z* · (sd(n_r) + sd(n_proj))`` — with ``n_proj`` the pair's restricted
count projected to the full budget — bounds the deviation with slack.  Two
variance models are available (``TescConfig.topk_bound``): the asymptotic
normal variance of the Kendall statistic (default; tight) and the paper's
Section 3.1 upper bound ``2(1 − τ²)/n`` (certified for every population,
several times wider, prunes late).  Confidence is per pair per round; it is
not Bonferroni-corrected across the schedule — raise ``topk_confidence``
when scanning very large pair sets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.batch import (
    BatchStats,
    PairRanking,
    PairSpec,
    ensure_uniform_sample,
    ensure_uniform_sampler,
    estimate_pair_list,
    event_universe,
    finalise_ranking,
    make_config_sampler,
    resolve_pair_spec,
)
from repro.core.config import DEFAULT_TOPK_GROWTH_FACTOR, TescConfig
from repro.core.density import DensityComputer, DensityMatrix
from repro.core.estimators import PairEstimateBatcher, variance_upper_bound
from repro.core.parallel import estimate_matrix_pairs_sharded, resolve_workers
from repro.events.attributed_graph import AttributedGraph
from repro.exceptions import ConfigurationError
from repro.obs.registry import NULL_REGISTRY
from repro.obs.trace import stage
from repro.sampling.cache import CachingSampler
from repro.stats.normal import critical_z
from repro.utils import deadlines
from repro.utils.timing import Timer


def round_schedule(initial: int, budget: int, growth_factor: float) -> List[int]:
    """Geometric prefix sizes from ``initial`` up to (and including) ``budget``.

    Consecutive sizes grow by at least one node and at most ``growth_factor``;
    the last entry is always exactly ``budget`` (a budget at or below
    ``initial`` degenerates to the single full-budget round, i.e. no
    screening at all).
    """
    if budget < 2:
        raise ConfigurationError(f"budget must be at least 2, got {budget}")
    sizes: List[int] = []
    size = min(int(initial), int(budget))
    while size < budget:
        sizes.append(size)
        size = min(int(budget), max(size + 1, int(math.ceil(size * growth_factor))))
    sizes.append(int(budget))
    return sizes


def derive_growth_factor(initial: int, budget: int, rounds: int) -> float:
    """The growth factor that spreads ``initial → budget`` over ``rounds``.

    ``rounds`` counts every round including the final full-budget one, so it
    must be at least 2 (one screening round plus the finish).  When the
    budget does not exceed the initial size there is nothing to spread and
    the default factor is returned unchanged.
    """
    rounds = int(rounds)
    if rounds < 2:
        raise ConfigurationError(
            f"rounds must be at least 2 (one screening round plus the "
            f"full-budget finish), got {rounds}"
        )
    if budget <= initial:
        return DEFAULT_TOPK_GROWTH_FACTOR
    return float((budget / initial) ** (1.0 / (rounds - 1)))


def asymptotic_tau_sd(sample_size: int) -> float:
    """Asymptotic standard deviation of the Kendall statistic at size ``n``.

    ``Var(t) ≈ 2(2n + 5) / (9 n (n − 1))`` — the classic null variance of
    tau-a, which tie corrections only shrink, so it is conservative with
    respect to ties.  Shares the ``n >= 2`` validation contract with
    :func:`~repro.core.estimators.variance_upper_bound`.
    """
    n = int(sample_size)
    if n < 2:
        raise ValueError(
            f"asymptotic_tau_sd needs sample_size >= 2, got {sample_size}"
        )
    return math.sqrt(2.0 * (2.0 * n + 5.0) / (9.0 * n * (n - 1.0)))


def confidence_half_width(
    estimate: float,
    num_reference_nodes: int,
    projected_full_nodes: int,
    z_star: float,
    bound: str = "asymptotic",
) -> float:
    """Two-sided half-width covering round-vs-full estimate deviation.

    ``z* · (sd(n) + sd(n_proj))``: the first term covers the round estimate's
    deviation from the population tau, the second the full-budget estimate's
    own deviation (small — ``n_proj >= n``).  ``bound`` selects the variance
    model (see module docstring).
    """
    n = int(num_reference_nodes)
    n_proj = max(int(projected_full_nodes), n)
    if bound == "certified":
        tau = min(1.0, max(-1.0, float(estimate)))
        sd_now = math.sqrt(variance_upper_bound(tau, n))
        sd_full = math.sqrt(variance_upper_bound(tau, n_proj))
    else:
        sd_now = asymptotic_tau_sd(n)
        sd_full = asymptotic_tau_sd(n_proj)
    return float(z_star) * (sd_now + sd_full)


@dataclass(frozen=True)
class TopKRound:
    """One progressive round's bookkeeping.

    Attributes
    ----------
    index:
        0-based round number.
    sample_size:
        Prefix size (number of reference nodes revealed) this round.
    new_reference_nodes:
        How many of those were newly BFS-counted this round.
    pairs_entering / pairs_estimated / pairs_pruned:
        Active pairs at round start, how many had enough restricted
        reference nodes to screen, and how many the bounds eliminated.
    live_events:
        Events still appearing in at least one surviving pair after pruning.
    kth_lower_bound:
        The pruning threshold (``None`` when fewer than k pairs had bounds).
    """

    index: int
    sample_size: int
    new_reference_nodes: int
    pairs_entering: int
    pairs_estimated: int
    pairs_pruned: int
    live_events: int
    kth_lower_bound: Optional[float]


@dataclass
class TopKStats:
    """Cost accounting for one progressive top-k call.

    ``screen_estimates`` counts the cheap per-round screening estimates
    (point estimate + bound only); ``final_estimates`` the full-inference
    estimates of the surviving pairs.  ``rank_pairs`` would have paid
    ``num_pairs`` full estimates at the full budget — the spread between
    these counters is the work the bounds saved, and the benchmark asserts
    on the wall-clock consequence.
    """

    num_events: int = 0
    num_pairs: int = 0
    k: int = 0
    budget: int = 0
    pairs_pruned: int = 0
    pairs_survived: int = 0
    screen_estimates: int = 0
    final_estimates: int = 0
    samples_drawn: int = 0
    sample_cache_hits: int = 0
    density_bfs_calls: int = 0
    workers: int = 1
    rounds: Tuple[TopKRound, ...] = ()
    timings: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class TopKRanking(PairRanking):
    """A :class:`~repro.core.batch.PairRanking` of the k best pairs, plus the
    progressive engine's round/pruning accounting."""

    k: int = 0
    confidence: float = 0.0
    topk_stats: TopKStats = field(default_factory=TopKStats)

    @property
    def rounds(self) -> Tuple[TopKRound, ...]:
        """The executed round schedule."""
        return self.topk_stats.rounds


class ProgressiveTopKEngine:
    """Top-k pair ranking that prunes with confidence bounds between rounds.

    Parameters
    ----------
    attributed:
        The attributed graph to test on.
    config:
        Default :class:`~repro.core.config.TescConfig`; the progressive
        knobs are ``topk_initial_sample_size``, ``topk_growth_factor``,
        ``topk_confidence`` and ``topk_bound``.  Same sampler restrictions
        as :class:`~repro.core.batch.BatchTescEngine` (uniform only).
    workers:
        Worker processes for the final survivor re-score (``None``/1 =
        serial).  Results are identical for every worker count.

    Examples
    --------
    >>> from repro.graph.generators import community_ring_graph
    >>> from repro.events import AttributedGraph
    >>> graph = community_ring_graph(8, 40, 5.0, 10, random_state=3)
    >>> attributed = AttributedGraph(
    ...     graph, {"a": range(0, 30), "b": range(10, 40), "c": range(160, 200)}
    ... )
    >>> engine = ProgressiveTopKEngine(
    ...     attributed, TescConfig(sample_size=120, random_state=3)
    ... )
    >>> ranking = engine.top_k(2)
    >>> [pair.rank for pair in ranking]
    [1, 2]
    """

    def __init__(
        self,
        attributed: AttributedGraph,
        config: Optional[TescConfig] = None,
        workers: Optional[int] = None,
        mp_context: Optional[str] = None,
        metrics=None,
    ) -> None:
        self.attributed = attributed
        self.config = config if config is not None else TescConfig()
        self.workers = resolve_workers(workers)
        self._mp_context = mp_context
        self._density_computer = DensityComputer(attributed.csr)
        self._samplers: Dict[tuple, CachingSampler] = {}
        self._private_pool = None
        self.stats = TopKStats(workers=self.workers)
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._m_rounds = self.metrics.counter(
            "tesc_topk_rounds_total",
            "Progressive rounds executed (screening and final).",
        )
        self._m_pruned = self.metrics.counter(
            "tesc_topk_pairs_pruned_total",
            "Pairs eliminated by confidence-bound pruning.",
        )
        self._m_survived = self.metrics.counter(
            "tesc_topk_pairs_survived_total",
            "Pairs that reached the full-budget final estimate.",
        )
        self._m_screens = self.metrics.counter(
            "tesc_topk_screen_estimates_total",
            "Cheap screening estimates computed across rounds.",
        )
        self._m_finals = self.metrics.counter(
            "tesc_topk_final_estimates_total",
            "Full-budget estimates computed for surviving pairs.",
        )

    # -- pool lifecycle -----------------------------------------------------

    def _pool(self):
        # Same sharing rule as the parallel batch engine: the default is the
        # process-wide persistent pool, an explicit mp_context gets a
        # private pool torn down by close().
        if self._mp_context is None:
            from repro.service.pool import global_pool

            return global_pool()
        if self._private_pool is None:
            from repro.service.pool import PersistentWorkerPool

            self._private_pool = PersistentWorkerPool(mp_context=self._mp_context)
        return self._private_pool

    def close(self) -> None:
        """Release engine-held resources (idempotent).

        A private pool (explicit ``mp_context``) is shut down; the shared
        process-wide pool survives for the next caller — by design.
        """
        if self._private_pool is not None:
            self._private_pool.shutdown()
            self._private_pool = None

    def __enter__(self) -> "ProgressiveTopKEngine":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # -- shared-resource plumbing ------------------------------------------

    def _sampler(self, cfg: TescConfig) -> CachingSampler:
        seed = cfg.random_state
        seed_token = seed if seed is None or isinstance(seed, int) else id(seed)
        key = (cfg.sampler, cfg.batch_per_vicinity, seed_token)
        cached = self._samplers.get(key)
        if cached is None:
            cached = CachingSampler(
                make_config_sampler(self.attributed, cfg), metrics=self.metrics
            )
            self._samplers[key] = cached
        return cached

    # -- the public API ------------------------------------------------------

    def top_k(
        self,
        k: int,
        pairs: PairSpec = "all",
        sort_by: str = "score",
        config: Optional[TescConfig] = None,
        on_insufficient: str = "keep",
        workers: Optional[int] = None,
    ) -> TopKRanking:
        """The ``k`` best pairs of ``pairs``, identical to full-budget ranking.

        Parameters
        ----------
        k:
            How many top pairs to return.
        pairs:
            ``"all"`` or an explicit pair sequence (as in ``rank_pairs``).
        sort_by:
            Only ``"score"`` is supported: the confidence bounds are bounds
            on the Kendall estimate, so pruning against a z-score or p-value
            order would be unsound.  Use ``rank_pairs(top_k=...)`` for other
            sort keys.
        config:
            Per-call :class:`~repro.core.config.TescConfig` override.
        on_insufficient:
            ``"keep"`` (default) or ``"raise"`` — same semantics as
            ``rank_pairs``; a pair too sparse to estimate is never pruned,
            so ``"raise"`` fires at the final round exactly when a full
            ranking would have raised.
        workers:
            Per-call override of the engine-level worker count.
        """
        if sort_by != "score":
            raise ConfigurationError(
                "confidence-bound pruning ranks by the Kendall estimate; "
                f'sort_by must be "score" (got {sort_by!r}) — use '
                "rank_pairs(top_k=...) for other sort keys"
            )
        if on_insufficient not in ("keep", "raise"):
            raise ConfigurationError(
                f'on_insufficient must be "keep" or "raise", got {on_insufficient!r}'
            )
        k = int(k)
        if k < 1:
            raise ConfigurationError(f"k must be a positive integer, got {k}")
        cfg = config if config is not None else self.config
        ensure_uniform_sampler(cfg, "the progressive top-k engine")
        worker_count = (
            resolve_workers(workers) if workers is not None else self.workers
        )
        timer = Timer()
        stats = TopKStats(k=k, workers=worker_count)

        pair_list = resolve_pair_spec(self.attributed.event_names(), pairs)
        events = sorted({event for pair in pair_list for event in pair})
        row_of = {event: row for row, event in enumerate(events)}
        indicators = np.asarray(self.attributed.indicator_matrix(events))
        universe = event_universe(self.attributed, events)

        sampler = self._sampler(cfg)
        misses_before = sampler.misses
        with timer.lap("sampling"), stage("sampling"):
            growth = sampler.growable(
                universe, cfg.vicinity_level, cfg.sample_size
            )
        if sampler.misses > misses_before:
            stats.samples_drawn += 1
        else:
            stats.sample_cache_hits += 1

        z_star = critical_z(1.0 - cfg.topk_confidence, "two-sided")
        bfs_engine = self._density_computer.engine
        bfs_before = bfs_engine.bfs_calls

        active = list(pair_list)
        rounds: List[TopKRound] = []
        matrix: Optional[DensityMatrix] = None
        batcher: Optional[PairEstimateBatcher] = None
        pending = round_schedule(
            cfg.topk_initial_sample_size, growth.budget, cfg.topk_growth_factor
        )
        live_rows = np.arange(len(events), dtype=np.int64)
        stalled_rounds = 0
        final_new_count = 0

        while pending:
            # Cooperative cancellation between rounds: a request whose
            # deadline expired stops before paying for another sample grow.
            deadlines.checkpoint()
            target = pending.pop(0)
            final_round = not pending
            self._m_rounds.inc()
            with timer.lap("sampling"), stage("sampling", target=int(target)):
                order_nodes = growth.grow_to(target)
            with timer.lap("densities"), stage("density"):
                if matrix is None:
                    new_count = order_nodes.size
                    matrix = self._density_computer.density_matrix(
                        order_nodes, indicators, cfg.vicinity_level
                    )
                else:
                    suffix = order_nodes[matrix.num_reference_nodes:]
                    new_count = suffix.size
                    matrix = self._density_computer.append_columns(
                        matrix, suffix, indicators[live_rows], rows=live_rows
                    )
            batcher = (
                PairEstimateBatcher(
                    matrix.densities,
                    kernel=cfg.kendall_kernel,
                    crossover=cfg.kendall_crossover,
                )
                if batcher is None
                else batcher.grown(matrix.densities)
            )
            if final_round:
                final_new_count = int(new_count)
                break

            entering = len(active)
            with timer.lap("screening"), stage("screening", pairs=entering):
                screened: List[Tuple[Tuple[str, str], float, float]] = []
                for pair in active:
                    columns = matrix.pair_rows(row_of[pair[0]], row_of[pair[1]])
                    if columns.size < 2:
                        continue  # too sparse to bound — never pruned
                    estimate, n_pair = batcher.screen_pair(
                        row_of[pair[0]], row_of[pair[1]], columns
                    )
                    width = confidence_half_width(
                        estimate,
                        n_pair,
                        (n_pair * growth.budget) // max(order_nodes.size, 1),
                        z_star,
                        cfg.topk_bound,
                    )
                    screened.append((pair, estimate, width))
                stats.screen_estimates += len(screened)

                kth_lower: Optional[float] = None
                pruned: set = set()
                if len(screened) >= k:
                    lower_bounds = sorted(
                        (estimate - width for _, estimate, width in screened),
                        reverse=True,
                    )
                    kth_lower = lower_bounds[k - 1]
                    pruned = {
                        pair
                        for pair, estimate, width in screened
                        if estimate + width < kth_lower
                    }
                    if pruned:
                        active = [pair for pair in active if pair not in pruned]
                        live_events = {event for pair in active for event in pair}
                        live_rows = np.array(
                            sorted(row_of[event] for event in live_events),
                            dtype=np.int64,
                        )
            rounds.append(
                TopKRound(
                    index=len(rounds),
                    sample_size=int(order_nodes.size),
                    new_reference_nodes=int(new_count),
                    pairs_entering=entering,
                    pairs_estimated=len(screened),
                    pairs_pruned=len(pruned),
                    live_events=int(live_rows.size),
                    kth_lower_bound=kth_lower,
                )
            )
            stalled_rounds = stalled_rounds + 1 if not pruned else 0
            if len(active) <= k or stalled_rounds >= 2:
                # Further intermediate rounds cannot help (already down to k)
                # or are persistently not helping (two consecutive rounds
                # pruned nothing); jump straight to the full budget.
                pending = pending[-1:]

        with timer.lap("sampling"), stage("sampling"):
            sample = growth.full_sample()
        ensure_uniform_sample(sample, cfg.sampler)

        # Final full-budget estimates for the survivors — the exact
        # rank_pairs arithmetic (shared density matrix, rank vectors,
        # size-dispatched kernels), optionally sharded across workers.
        with timer.lap("estimates"), stage(
            "estimate", pairs=len(active), workers=worker_count
        ):
            if worker_count > 1 and len(active) > 1:
                results = estimate_matrix_pairs_sharded(
                    self._pool(), matrix, row_of, active, cfg, on_insufficient,
                    worker_count,
                )
            else:
                results = estimate_pair_list(
                    active, row_of, matrix, batcher, cfg, on_insufficient
                )
        stats.final_estimates += len(active)

        ranked = finalise_ranking(results, sort_by, k)

        rounds.append(
            TopKRound(
                index=len(rounds),
                sample_size=int(matrix.num_reference_nodes),
                new_reference_nodes=final_new_count,
                pairs_entering=len(active),
                pairs_estimated=len(active),
                pairs_pruned=0,
                live_events=int(live_rows.size),
                kth_lower_bound=None,
            )
        )
        stats.num_events = len(events)
        stats.num_pairs = len(pair_list)
        stats.budget = int(growth.budget)
        stats.pairs_pruned = len(pair_list) - len(active)
        stats.pairs_survived = len(active)
        stats.density_bfs_calls = bfs_engine.bfs_calls - bfs_before
        stats.rounds = tuple(rounds)
        for name in ("sampling", "densities", "screening", "estimates"):
            stats.timings[name] = timer.total(name)
        self._accumulate(stats)

        return TopKRanking(
            pairs=ranked,
            vicinity_level=cfg.vicinity_level,
            sort_by=sort_by,
            alpha=cfg.alpha,
            sample=sample,
            stats=BatchStats(
                num_events=len(events),
                num_pairs=len(pair_list),
                samples_drawn=stats.samples_drawn,
                sample_cache_hits=stats.sample_cache_hits,
                density_passes=len(stats.rounds),
                density_bfs_calls=stats.density_bfs_calls,
                workers=worker_count,
                timings=dict(stats.timings),
            ),
            k=k,
            confidence=cfg.topk_confidence,
            topk_stats=stats,
        )

    def _accumulate(self, call_stats: TopKStats) -> None:
        """Fold one call's counters into the engine-lifetime :attr:`stats`."""
        self._m_pruned.inc(call_stats.pairs_pruned)
        self._m_survived.inc(call_stats.pairs_survived)
        self._m_screens.inc(call_stats.screen_estimates)
        self._m_finals.inc(call_stats.final_estimates)
        self.stats.num_events = call_stats.num_events
        self.stats.num_pairs += call_stats.num_pairs
        self.stats.pairs_pruned += call_stats.pairs_pruned
        self.stats.pairs_survived += call_stats.pairs_survived
        self.stats.screen_estimates += call_stats.screen_estimates
        self.stats.final_estimates += call_stats.final_estimates
        self.stats.samples_drawn += call_stats.samples_drawn
        self.stats.sample_cache_hits += call_stats.sample_cache_hits
        self.stats.density_bfs_calls += call_stats.density_bfs_calls
        for name, seconds in call_stats.timings.items():
            self.stats.timings[name] = self.stats.timings.get(name, 0.0) + seconds


def top_k_pairs(
    attributed: AttributedGraph,
    k: int,
    pairs: PairSpec = "all",
    vicinity_level: int = 1,
    workers: Optional[int] = None,
    **config_kwargs,
) -> TopKRanking:
    """One-call convenience wrapper around :class:`ProgressiveTopKEngine`.

    ``config_kwargs`` accepts any :class:`~repro.core.config.TescConfig`
    field (e.g. ``sample_size=8000``, ``topk_confidence=0.999``,
    ``random_state=17``).

    Examples
    --------
    >>> from repro.graph.generators import erdos_renyi_graph
    >>> from repro.events import AttributedGraph
    >>> graph = erdos_renyi_graph(300, 0.02, random_state=7)
    >>> attributed = AttributedGraph(
    ...     graph, {"a": range(0, 40), "b": range(20, 60), "c": range(200, 240)}
    ... )
    >>> ranking = top_k_pairs(attributed, 2, sample_size=100, random_state=7)
    >>> [pair.rank for pair in ranking]
    [1, 2]
    """
    config = TescConfig(vicinity_level=vicinity_level, **config_kwargs)
    with ProgressiveTopKEngine(attributed, config, workers=workers) as engine:
        return engine.top_k(k, pairs)
