"""Core TESC measure: densities, concordance, estimators and the testers.

The public entry points are :class:`TescTester` (per-pair object API),
:func:`measure_tesc` (one-call convenience function), and — for many-pair
workloads — :class:`BatchTescEngine` / :func:`rank_pairs`, which amortise
sampling, vicinity indexing and density computation across a whole pair set
and return a ranked :class:`PairRanking`.  For multi-core machines,
:class:`ParallelBatchTescEngine` / ``rank_pairs(..., workers=N)`` shard the
pair workload across a process pool with results identical to the serial
engine.  :class:`ProgressiveTopKEngine` / :func:`top_k_pairs` answer top-k
queries with confidence-bound pruning over a prefix-growable sample —
identical output to ``rank_pairs().top(k)``, a fraction of the work.
"""

from repro.core.batch import BatchTescEngine, PairRanking, RankedPair, rank_pairs
from repro.core.topk import ProgressiveTopKEngine, TopKRanking, top_k_pairs
from repro.core.parallel import (
    ParallelBatchTescEngine,
    rank_pairs_parallel,
    resolve_workers,
)
from repro.core.config import TescConfig
from repro.core.density import DensityComputer, DensityMatrix, density_vectors
from repro.core.concordance import concordance, concordance_counts
from repro.core.estimators import (
    EstimateComponents,
    PairEstimateBatcher,
    importance_weighted_estimate,
    plain_estimate,
)
from repro.core.tesc import TescResult, TescTester, measure_tesc
from repro.core.weighted import distance_weighted_densities, weighted_tesc_score

__all__ = [
    "BatchTescEngine",
    "ProgressiveTopKEngine",
    "TopKRanking",
    "top_k_pairs",
    "ParallelBatchTescEngine",
    "rank_pairs_parallel",
    "resolve_workers",
    "TescConfig",
    "DensityComputer",
    "DensityMatrix",
    "density_vectors",
    "concordance",
    "concordance_counts",
    "EstimateComponents",
    "PairEstimateBatcher",
    "PairRanking",
    "RankedPair",
    "plain_estimate",
    "importance_weighted_estimate",
    "rank_pairs",
    "TescResult",
    "TescTester",
    "measure_tesc",
    "distance_weighted_densities",
    "weighted_tesc_score",
]
