"""Core TESC measure: densities, concordance, estimators and the tester.

The public entry points are :class:`TescTester` (object API) and
:func:`measure_tesc` (one-call convenience function); both return a
:class:`TescResult` bundling the estimate, z-score, p-value and verdict.
"""

from repro.core.config import TescConfig
from repro.core.density import DensityComputer, density_vectors
from repro.core.concordance import concordance, concordance_counts
from repro.core.estimators import (
    EstimateComponents,
    importance_weighted_estimate,
    plain_estimate,
)
from repro.core.tesc import TescResult, TescTester, measure_tesc
from repro.core.weighted import distance_weighted_densities, weighted_tesc_score

__all__ = [
    "TescConfig",
    "DensityComputer",
    "density_vectors",
    "concordance",
    "concordance_counts",
    "EstimateComponents",
    "plain_estimate",
    "importance_weighted_estimate",
    "TescResult",
    "TescTester",
    "measure_tesc",
    "distance_weighted_densities",
    "weighted_tesc_score",
]
