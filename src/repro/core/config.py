"""Configuration for a TESC test."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.exceptions import ConfigurationError
from repro.stats.fast_kendall import KERNELS
from repro.utils.rng import RandomState
from repro.utils.validation import check_positive_int, check_vicinity_level


#: Sample size used throughout the paper's experiments ("we empirically set
#: the sample size of reference nodes n = 900").
DEFAULT_SAMPLE_SIZE = 900

#: Significance level of the paper's one-tailed tests.
DEFAULT_ALPHA = 0.05

#: First-round prefix size of the progressive top-k engine.
DEFAULT_TOPK_INITIAL_SAMPLE_SIZE = 256

#: Geometric growth factor between progressive top-k rounds.
DEFAULT_TOPK_GROWTH_FACTOR = 2.0

#: Two-sided confidence level of the progressive pruning bounds.  0.995
#: keeps a safety margin over the asymptotic variance model: the worst
#: prefix-vs-full deviation observed while calibrating on tie-heavy DBLP
#: density columns was ~3.1x the asymptotic sd at the smallest rounds,
#: inside the ~3.3x half-width this level buys (0.99 would sit at ~3.0x).
DEFAULT_TOPK_CONFIDENCE = 0.995

#: Valid pruning-bound variance choices for the progressive top-k engine.
TOPK_BOUNDS = ("asymptotic", "certified")

#: Sentinel for :meth:`TescConfig.with_kernel`: keep the current crossover.
_KEEP_CROSSOVER = object()


@dataclass(frozen=True)
class TescConfig:
    """Parameters of a TESC significance test.

    Attributes
    ----------
    vicinity_level:
        The level ``h`` — densities are measured in h-hop vicinities and the
        reference-node pool is ``V^h_{a∪b}``.  The paper focuses on 1–3.
    sample_size:
        Number of reference nodes ``n`` to sample (paper default: 900).
        Ignored by exhaustive (non-sampling) computation.
    sampler:
        Name of the reference-node sampler registered in
        :mod:`repro.sampling.registry`:

        * ``"batch_bfs"`` (default) — Algorithm 1: enumerate the reference
          population with one multi-source BFS, then sample uniformly.  Most
          accurate; recommended for small/medium event sets.
        * ``"exhaustive"`` — use the whole population (no sampling); the
          ground truth for tests and calibration.
        * ``"reject"`` — rejection sampling; uniform, avoids enumerating the
          population but needs the vicinity-size index.
        * ``"importance"`` / ``"batch_importance"`` — Algorithm 2 (and its
          Section 5.2.2 batched variant): non-uniform draws corrected by
          importance weights (Eq. 8); cost scales with ``n`` rather than the
          population size.  Per-pair testing only — the weighted samples
          cannot be shared by :class:`~repro.core.batch.BatchTescEngine`.
        * ``"whole_graph"`` — Algorithm 3: uniform draws over all of ``V``
          with an in-sight test; for very large event sets at high ``h``.
    alpha:
        Significance level of the test.
    alternative:
        ``"two-sided"``, ``"greater"`` (attraction) or ``"less"`` (repulsion).
    batch_per_vicinity:
        For the batched importance sampler: how many reference nodes to draw
        from each sampled event node's vicinity (Section 5.2.2 uses 3 for
        h=2 and 6 for h=3).  ``None`` keeps the chosen sampler's own default.
    kendall_kernel:
        Concordance-kernel selection for every estimate this config drives:
        ``"auto"`` (default) dispatches on sample size — the vectorised
        O(n²) kernel below the crossover, the O(n log n) merge-sort /
        Fenwick kernels at or above it; ``"naive"`` / ``"fast"`` force one
        path (benchmarks, debugging).  The unweighted kernels return the
        same exact integer ``S``, so this never changes a test verdict.
    kendall_crossover:
        ``"auto"`` dispatch threshold override (``None`` keeps the library
        default, :data:`repro.stats.fast_kendall.DEFAULT_CROSSOVER`).
    topk_initial_sample_size:
        First-round prefix size of the progressive top-k engine
        (:class:`~repro.core.topk.ProgressiveTopKEngine`); rounds grow
        geometrically from here to ``sample_size``.
    topk_growth_factor:
        Multiplier between consecutive progressive rounds (must exceed 1).
    topk_confidence:
        Two-sided confidence level of the per-round pruning bounds.
    topk_bound:
        Which variance the pruning half-widths use: ``"asymptotic"``
        (default) takes the asymptotic normal variance of the Kendall
        statistic — tight, prunes aggressively; ``"certified"`` takes the
        paper's Section 3.1 upper bound ``2(1 - τ²)/n`` — several times
        wider, prunes late, but holds for every population.
    random_state:
        Seed/generator for the sampling step.
    """

    vicinity_level: int = 1
    sample_size: int = DEFAULT_SAMPLE_SIZE
    sampler: str = "batch_bfs"
    alpha: float = DEFAULT_ALPHA
    alternative: str = "two-sided"
    batch_per_vicinity: Optional[int] = None
    kendall_kernel: str = "auto"
    kendall_crossover: Optional[int] = None
    topk_initial_sample_size: int = DEFAULT_TOPK_INITIAL_SAMPLE_SIZE
    topk_growth_factor: float = DEFAULT_TOPK_GROWTH_FACTOR
    topk_confidence: float = DEFAULT_TOPK_CONFIDENCE
    topk_bound: str = "asymptotic"
    random_state: RandomState = field(default=None, compare=False)

    def __post_init__(self) -> None:
        check_vicinity_level(self.vicinity_level, "vicinity_level")
        check_positive_int(self.sample_size, "sample_size")
        if self.batch_per_vicinity is not None:
            check_positive_int(self.batch_per_vicinity, "batch_per_vicinity")
        if not 0.0 < self.alpha < 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1), got {self.alpha}")
        if self.alternative not in ("two-sided", "greater", "less"):
            raise ConfigurationError(
                "alternative must be 'two-sided', 'greater' or 'less', "
                f"got {self.alternative!r}"
            )
        if not isinstance(self.sampler, str) or not self.sampler:
            raise ConfigurationError("sampler must be a non-empty string")
        if self.kendall_kernel not in KERNELS:
            raise ConfigurationError(
                f"kendall_kernel must be one of {KERNELS}, "
                f"got {self.kendall_kernel!r}"
            )
        if self.kendall_crossover is not None:
            check_positive_int(self.kendall_crossover, "kendall_crossover")
        check_positive_int(self.topk_initial_sample_size, "topk_initial_sample_size")
        if self.topk_initial_sample_size < 2:
            raise ConfigurationError(
                "topk_initial_sample_size must be at least 2, got "
                f"{self.topk_initial_sample_size}"
            )
        if not self.topk_growth_factor > 1.0:
            raise ConfigurationError(
                f"topk_growth_factor must exceed 1, got {self.topk_growth_factor}"
            )
        if not 0.0 < self.topk_confidence < 1.0:
            raise ConfigurationError(
                f"topk_confidence must be in (0, 1), got {self.topk_confidence}"
            )
        if self.topk_bound not in TOPK_BOUNDS:
            raise ConfigurationError(
                f"topk_bound must be one of {TOPK_BOUNDS}, got {self.topk_bound!r}"
            )

    def with_kernel(self, kendall_kernel: str,
                    kendall_crossover: object = _KEEP_CROSSOVER) -> "TescConfig":
        """A copy of this configuration using a different concordance kernel.

        ``kendall_crossover`` is preserved unless explicitly passed (``None``
        explicitly restores the library default threshold).
        """
        if kendall_crossover is _KEEP_CROSSOVER:
            kendall_crossover = self.kendall_crossover
        return replace(
            self,
            kendall_kernel=kendall_kernel,
            kendall_crossover=kendall_crossover,
        )

    def with_level(self, vicinity_level: int) -> "TescConfig":
        """A copy of this configuration at a different vicinity level."""
        return replace(self, vicinity_level=vicinity_level)

    def with_sampler(self, sampler: str, **kwargs) -> "TescConfig":
        """A copy of this configuration using a different sampler."""
        return replace(self, sampler=sampler, **kwargs)

    def with_random_state(self, random_state: RandomState) -> "TescConfig":
        """A copy of this configuration with a new random state."""
        return replace(self, random_state=random_state)
