"""Event density in a reference node's vicinity (Eq. 2).

``s^h_a(r) = |V_a ∩ V^h_r| / |V^h_r|`` — the fraction of the reference
node's h-vicinity occupied by event-a nodes.  The normalisation by the
vicinity size makes vicinities of different sizes comparable, playing the
role that "area" plays in spatial point-pattern statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

import numpy as np

from repro.events.attributed_graph import AttributedGraph
from repro.graph.csr import CSRGraph
from repro.graph.traversal import BFSEngine
from repro.utils import deadlines
from repro.utils.validation import check_vicinity_level


@dataclass(frozen=True)
class DensityMatrix:
    """Event densities of many events over one shared reference sample.

    Attributes
    ----------
    reference_nodes:
        The distinct reference node ids the columns correspond to.
    densities:
        ``(num_events, num_reference_nodes)`` float matrix — entry
        ``(e, r)`` is ``s^h_e(r)`` of Eq. 2.
    counts:
        Integer numerators ``|V_e ∩ V^h_r|`` of the same shape.  Because hop
        distance is symmetric, ``counts[e, r] > 0`` iff ``r`` lies in the
        reference population ``V^h_{V_e}`` of event ``e`` — the batch engine
        uses this to recover each pair's exact population from shared work.
    vicinity_sizes:
        ``|V^h_r|`` per reference node (the shared denominators).
    level:
        The vicinity level ``h`` the matrix was computed at.
    """

    reference_nodes: np.ndarray
    densities: np.ndarray
    counts: np.ndarray
    vicinity_sizes: np.ndarray
    level: int

    @property
    def num_events(self) -> int:
        """Number of event rows."""
        return int(self.densities.shape[0])

    @property
    def num_reference_nodes(self) -> int:
        """Number of reference-node columns."""
        return int(self.densities.shape[1])

    def pair_rows(self, row_a: int, row_b: int) -> np.ndarray:
        """Columns belonging to the pair's reference population.

        A reference node is in ``V^h_{a∪b}`` exactly when its vicinity
        contains at least one occurrence of either event (symmetry of hop
        distance), i.e. when either count is positive.
        """
        return np.flatnonzero((self.counts[row_a] > 0) | (self.counts[row_b] > 0))


def densities_from_counts(counts: np.ndarray, sizes: np.ndarray) -> np.ndarray:
    """Density matrix from integer numerators and vicinity sizes (Eq. 2).

    ``counts`` is ``(num_events, n)`` int, ``sizes`` is ``(n,)`` int; empty
    vicinities yield density 0.  Kept as a module-level function so every
    producer of a :class:`DensityMatrix` — the batch engine's full pass and
    the streaming ranker's incremental column assembly — performs the exact
    same float arithmetic, which is what makes incrementally maintained
    densities bit-identical to freshly computed ones.
    """
    counts = np.asarray(counts)
    sizes = np.asarray(sizes)
    safe_sizes = np.where(sizes > 0, sizes, 1)
    return counts / safe_sizes[np.newaxis, :].astype(float)


class DensityComputer:
    """Computes per-reference-node event densities with a shared BFS engine.

    One h-hop BFS per reference node yields the vicinity once and both
    events' densities are read off the same vicinity, exactly as the paper's
    event-density phase does.
    """

    def __init__(self, graph: CSRGraph, engine: Optional[BFSEngine] = None) -> None:
        self.graph = graph
        self.engine = engine if engine is not None else BFSEngine(graph)

    def density(self, reference_node: int, indicator: np.ndarray, level: int) -> float:
        """``s^h_event(reference_node)`` for the event given by ``indicator``."""
        check_vicinity_level(level)
        count, size = self.engine.count_marked_in_vicinity(reference_node, level, indicator)
        return count / size if size else 0.0

    def density_pair(
        self,
        reference_node: int,
        indicator_a: np.ndarray,
        indicator_b: np.ndarray,
        level: int,
    ) -> Tuple[float, float]:
        """Densities of both events around one reference node (one BFS)."""
        check_vicinity_level(level)
        vicinity = self.engine.vicinity(reference_node, level)
        size = vicinity.size
        if size == 0:
            return 0.0, 0.0
        density_a = float(indicator_a[vicinity].sum()) / size
        density_b = float(indicator_b[vicinity].sum()) / size
        return density_a, density_b

    def density_vectors(
        self,
        reference_nodes: Iterable[int],
        indicator_a: np.ndarray,
        indicator_b: np.ndarray,
        level: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Density vectors ``s^h_a`` and ``s^h_b`` over the reference nodes."""
        nodes = list(int(node) for node in reference_nodes)
        densities_a = np.empty(len(nodes), dtype=float)
        densities_b = np.empty(len(nodes), dtype=float)
        for index, node in enumerate(nodes):
            densities_a[index], densities_b[index] = self.density_pair(
                node, indicator_a, indicator_b, level
            )
        return densities_a, densities_b

    def density_matrix(
        self,
        reference_nodes: Iterable[int],
        indicator_matrix: np.ndarray,
        level: int,
    ) -> "DensityMatrix":
        """Densities of *many* events around many reference nodes.

        One h-hop BFS per reference node yields its vicinity once, and the
        occurrence counts of every event are gathered from the vicinity in a
        single vectorised reduction — the multi-event generalisation of
        :meth:`density_pair` that :class:`~repro.core.batch.BatchTescEngine`
        shares across all pairs it ranks.

        Parameters
        ----------
        reference_nodes:
            The reference sample (distinct node ids).
        indicator_matrix:
            ``(num_events, num_nodes)`` boolean matrix; row ``e`` marks the
            occurrences of event ``e`` (see
            :meth:`~repro.events.attributed_graph.AttributedGraph.indicator_matrix`).
        level:
            The vicinity level ``h``.
        """
        check_vicinity_level(level)
        deadlines.checkpoint()
        indicators = np.asarray(indicator_matrix)
        if indicators.ndim != 2 or indicators.shape[1] != self.graph.num_nodes:
            raise ValueError(
                "indicator_matrix must have shape (num_events, num_nodes), got "
                f"{indicators.shape}"
            )
        nodes = np.asarray(
            list(int(node) for node in reference_nodes), dtype=np.int64
        )
        # One grouped multi-source BFS instead of one Python-level BFS per
        # reference node: every block of reference vicinities is expanded by
        # vectorised frontier passes and all events' occurrence counts fall
        # out of a single matrix product per block.
        counts, sizes = self.engine.grouped_marked_counts(nodes, level, indicators)
        densities = densities_from_counts(counts, sizes)
        return DensityMatrix(
            reference_nodes=nodes,
            densities=densities,
            counts=counts,
            vicinity_sizes=sizes,
            level=int(level),
        )

    def append_columns(
        self,
        matrix: "DensityMatrix",
        new_nodes: Iterable[int],
        indicator_matrix: np.ndarray,
        rows: Optional[np.ndarray] = None,
    ) -> "DensityMatrix":
        """Grow a density matrix by BFS-counting only the *new* reference nodes.

        The progressive top-k engine's prefix-sample rounds call this with
        each round's suffix of freshly revealed reference nodes: the existing
        columns are reused untouched (density is a per-column quantity, so
        appended matrices are bit-identical to a one-shot pass over the
        concatenated node list), and only ``len(new_nodes)`` h-hop BFS
        traversals are issued per round.

        Parameters
        ----------
        matrix:
            The matrix to grow; its columns become the prefix of the result.
        new_nodes:
            Reference nodes to append (in order) as new columns.
        indicator_matrix:
            ``(num_rows_to_fill, num_nodes)`` boolean matrix of the events
            whose counts are still needed.  With ``rows=None`` it must cover
            every row of ``matrix``; otherwise row ``i`` of the indicators
            fills matrix row ``rows[i]``.
        rows:
            Optional row indices into ``matrix`` for the indicator rows.
            Rounds pass the rows of the events still appearing in a surviving
            pair; dead events' new columns are left at count 0 (their rows
            are never read again — their pairs were pruned).
        """
        deadlines.checkpoint()
        indicators = np.asarray(indicator_matrix)
        if indicators.ndim != 2 or indicators.shape[1] != self.graph.num_nodes:
            raise ValueError(
                "indicator_matrix must have shape (num_events, num_nodes), got "
                f"{indicators.shape}"
            )
        if rows is None:
            if indicators.shape[0] != matrix.num_events:
                raise ValueError(
                    f"indicator_matrix has {indicators.shape[0]} rows but the "
                    f"matrix has {matrix.num_events}; pass rows= to fill a subset"
                )
            row_index = np.arange(matrix.num_events, dtype=np.int64)
        else:
            row_index = np.asarray(rows, dtype=np.int64)
            if row_index.shape != (indicators.shape[0],):
                raise ValueError(
                    "rows must map each indicator row to a matrix row, got "
                    f"{row_index.shape} for {indicators.shape[0]} indicator rows"
                )
        nodes = np.asarray(
            list(int(node) for node in new_nodes), dtype=np.int64
        )
        new_counts = np.zeros((matrix.num_events, nodes.size), dtype=np.int64)
        if nodes.size:
            live_counts, new_sizes = self.engine.grouped_marked_counts(
                nodes, matrix.level, indicators
            )
            new_counts[row_index] = live_counts
        else:
            new_sizes = np.zeros(0, dtype=np.int64)
        return DensityMatrix(
            reference_nodes=np.concatenate([matrix.reference_nodes, nodes]),
            densities=np.hstack(
                [matrix.densities, densities_from_counts(new_counts, new_sizes)]
            ),
            counts=np.hstack([matrix.counts, new_counts]),
            vicinity_sizes=np.concatenate([matrix.vicinity_sizes, new_sizes]),
            level=matrix.level,
        )


def density_vectors(
    attributed: AttributedGraph,
    event_a: str,
    event_b: str,
    reference_nodes: Iterable[int],
    level: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Convenience wrapper computing both density vectors for two events."""
    computer = DensityComputer(attributed.csr)
    return computer.density_vectors(
        reference_nodes,
        attributed.event_indicator(event_a),
        attributed.event_indicator(event_b),
        level,
    )
