"""Event density in a reference node's vicinity (Eq. 2).

``s^h_a(r) = |V_a ∩ V^h_r| / |V^h_r|`` — the fraction of the reference
node's h-vicinity occupied by event-a nodes.  The normalisation by the
vicinity size makes vicinities of different sizes comparable, playing the
role that "area" plays in spatial point-pattern statistics.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from repro.events.attributed_graph import AttributedGraph
from repro.graph.csr import CSRGraph
from repro.graph.traversal import BFSEngine
from repro.utils.validation import check_vicinity_level


class DensityComputer:
    """Computes per-reference-node event densities with a shared BFS engine.

    One h-hop BFS per reference node yields the vicinity once and both
    events' densities are read off the same vicinity, exactly as the paper's
    event-density phase does.
    """

    def __init__(self, graph: CSRGraph, engine: Optional[BFSEngine] = None) -> None:
        self.graph = graph
        self.engine = engine if engine is not None else BFSEngine(graph)

    def density(self, reference_node: int, indicator: np.ndarray, level: int) -> float:
        """``s^h_event(reference_node)`` for the event given by ``indicator``."""
        check_vicinity_level(level)
        count, size = self.engine.count_marked_in_vicinity(reference_node, level, indicator)
        return count / size if size else 0.0

    def density_pair(
        self,
        reference_node: int,
        indicator_a: np.ndarray,
        indicator_b: np.ndarray,
        level: int,
    ) -> Tuple[float, float]:
        """Densities of both events around one reference node (one BFS)."""
        check_vicinity_level(level)
        vicinity = self.engine.vicinity(reference_node, level)
        size = vicinity.size
        if size == 0:
            return 0.0, 0.0
        density_a = float(indicator_a[vicinity].sum()) / size
        density_b = float(indicator_b[vicinity].sum()) / size
        return density_a, density_b

    def density_vectors(
        self,
        reference_nodes: Iterable[int],
        indicator_a: np.ndarray,
        indicator_b: np.ndarray,
        level: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Density vectors ``s^h_a`` and ``s^h_b`` over the reference nodes."""
        nodes = list(int(node) for node in reference_nodes)
        densities_a = np.empty(len(nodes), dtype=float)
        densities_b = np.empty(len(nodes), dtype=float)
        for index, node in enumerate(nodes):
            densities_a[index], densities_b[index] = self.density_pair(
                node, indicator_a, indicator_b, level
            )
        return densities_a, densities_b


def density_vectors(
    attributed: AttributedGraph,
    event_a: str,
    event_b: str,
    reference_nodes: Iterable[int],
    level: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Convenience wrapper computing both density vectors for two events."""
    computer = DensityComputer(attributed.csr)
    return computer.density_vectors(
        reference_nodes,
        attributed.event_indicator(event_a),
        attributed.event_indicator(event_b),
        level,
    )
