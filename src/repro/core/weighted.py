"""Distance-weighted TESC (the Section 6 extension).

The paper sketches, as future work, a scheme that "get[s] rid of h by
designing a weighted correlation measure where reference nodes closer to
event nodes have higher weights".  This module implements a concrete variant:
instead of the hard h-hop cutoff of Eq. 2, each event occurrence contributes
``decay^d`` to a reference node's density, where ``d`` is the hop distance
(truncated at ``max_hops``).  The same Kendall machinery is then applied to
the weighted densities.

Because the null distribution of the weighted statistic is no longer covered
by the closed-form tie-corrected variance argument (the paper explicitly
notes this difficulty), significance is left to the caller: the function
returns the score, and the ablation benchmarks compare its *ranking* of
planted pairs against the standard measure rather than its z-scores.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.events.attributed_graph import AttributedGraph
from repro.exceptions import ConfigurationError
from repro.graph.traversal import BFSEngine
from repro.stats.kendall import kendall_tau_a
from repro.utils.validation import check_positive_int


def distance_weighted_densities(
    attributed: AttributedGraph,
    event: str,
    reference_nodes: Iterable[int],
    decay: float = 0.5,
    max_hops: int = 3,
) -> np.ndarray:
    """Distance-decayed event density around each reference node.

    For reference node ``r`` the weighted density is
    ``sum_{v in V_event, d(r, v) <= max_hops} decay^{d(r, v)}`` divided by
    ``sum_{u in V^{max_hops}_r} decay^{d(r, u)}`` (the decayed "area").
    """
    if not 0.0 < decay <= 1.0:
        raise ConfigurationError(f"decay must be in (0, 1], got {decay}")
    max_hops = check_positive_int(max_hops, "max_hops")

    engine = BFSEngine(attributed.csr)
    indicator = attributed.event_indicator(event)
    nodes = [int(node) for node in reference_nodes]
    densities = np.zeros(len(nodes), dtype=float)

    for index, reference in enumerate(nodes):
        # Ring-by-ring expansion: nodes first reached at hop d get weight decay^d.
        previous = engine.vicinity(reference, 0)
        numerator = float(indicator[previous].sum())
        denominator = float(previous.size)
        for hop in range(1, max_hops + 1):
            current = engine.vicinity(reference, hop)
            if current.size == previous.size:
                break
            ring = np.setdiff1d(current, previous, assume_unique=False)
            weight = decay ** hop
            numerator += weight * float(indicator[ring].sum())
            denominator += weight * float(ring.size)
            previous = current
        densities[index] = numerator / denominator if denominator > 0 else 0.0
    return densities


def weighted_tesc_score(
    attributed: AttributedGraph,
    event_a: str,
    event_b: str,
    reference_nodes: Iterable[int],
    decay: float = 0.5,
    max_hops: int = 3,
    kernel: str = "auto",
) -> Tuple[float, np.ndarray, np.ndarray]:
    """Kendall τ of the distance-weighted densities of the two events.

    Returns ``(score, weighted_densities_a, weighted_densities_b)``.
    ``kernel`` selects the concordance kernel (the decayed densities are
    near-tie-free, so large reference sets route to the O(n log n) merge
    kernel under ``"auto"``); the score is exact on every path.
    """
    nodes = [int(node) for node in reference_nodes]
    densities_a = distance_weighted_densities(attributed, event_a, nodes, decay, max_hops)
    densities_b = distance_weighted_densities(attributed, event_b, nodes, decay, max_hops)
    score = kendall_tau_a(densities_a, densities_b, kernel=kernel)
    return float(score), densities_a, densities_b
