"""Parallel pair ranking over the persistent shared-memory worker pool.

:class:`ParallelBatchTescEngine` is the multi-core sibling of
:class:`~repro.core.batch.BatchTescEngine`.  Earlier revisions forked a
process pool per engine and re-ran the whole density pass inside every pair
shard; with the O(n log n) kernels that spin-up and duplicated traversal
cost more than the ranking itself (the BENCH_pr5 regression).  The engine
now decomposes the work so that nothing is duplicated and nothing is forked
per call:

1. **One sample, drawn once, in the parent.**  The parent draws the shared
   reference sample over the union universe exactly as the serial engine
   would (same sampler, same RNG stream), so every downstream quantity is
   **bit-identical to the serial engine** in exhaustive and sampled mode
   alike.
2. **One density pass, column-sharded.**  The grouped multi-source BFS
   treats reference nodes independently, so the sample's columns are split
   into contiguous slices — one per worker — and reassembled exactly
   (:func:`~repro.service.pool.pooled_density_matrix`).  Unlike the old
   pair-sharded design, no worker repeats another's traversal: total CPU
   stays at serial cost.
3. **Pair-sharded estimates over shared memory.**  The assembled matrix is
   published once to :mod:`multiprocessing.shared_memory` and each worker
   scores a round-robin pair shard with the same restricted-vector
   arithmetic as the serial engine (:func:`estimate_matrix_pairs_sharded`).
4. **Deterministic merge.**  Shard results are merged in the parent and
   ranked with the serial total order (statistic plus event-name
   tie-break), so the final ranking does not depend on sharding or
   completion order.

All dispatch goes through the process-wide
:class:`~repro.service.pool.PersistentWorkerPool`: workers are spawned once
per process lifetime and reused by every engine (batch, progressive top-k,
streaming, the correlation service), with datasets crossing the process
boundary as version-memoised shared-memory blocks rather than per-call
pickles.
"""

from __future__ import annotations

import os
from dataclasses import asdict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.batch import (
    MAX_CACHED_MATRICES,
    SORT_KEYS,
    BatchStats,
    BatchTescEngine,
    PairRanking,
    PairSpec,
    RankedPair,
    estimate_pair_list,
    finalise_ranking,
)
from repro.core.config import TescConfig
from repro.core.density import DensityMatrix
from repro.events.attributed_graph import AttributedGraph
from repro.exceptions import ConfigurationError
from repro.obs.trace import attach_remote, propagation, stage
from repro.utils.timing import Timer


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a ``workers`` request into a concrete positive count.

    ``None`` and ``1`` mean serial; ``0`` and negative values mean "one per
    available core"; any other positive integer is used as given.
    """
    if workers is None:
        return 1
    count = int(workers)
    if count <= 0:
        return os.cpu_count() or 1
    return count


def shard_pairs(
    pair_list: Sequence[Tuple[str, str]], num_shards: int
) -> List[List[Tuple[str, str]]]:
    """Deal pairs round-robin into at most ``num_shards`` non-empty shards.

    Round-robin keeps shard sizes within one pair of each other, so the
    slowest worker finishes at most one pair's work behind the rest.
    """
    num_shards = max(1, min(int(num_shards), len(pair_list)))
    shards: List[List[Tuple[str, str]]] = [[] for _ in range(num_shards)]
    for position, pair in enumerate(pair_list):
        shards[position % num_shards].append(pair)
    return shards


def shard_seeds(
    random_state, count: int
) -> List[Optional[int]]:
    """Derive one deterministic integer seed per shard from the root state.

    Integer (or :class:`numpy.random.SeedSequence`) roots are spawned into
    independent child sequences — shard ``i`` gets the same seed for the same
    root no matter how the pair list is sharded.  ``None`` stays ``None``
    (fresh entropy), and generator roots also map to ``None`` rather than
    consuming draws from the caller's stream.  Today's shards consume no
    randomness — the sample is drawn by the parent — so this is plumbing for
    future stochastic estimators.
    """
    if count <= 0:
        return []
    if isinstance(random_state, np.random.SeedSequence):
        # Spawn from a snapshot: SeedSequence.spawn mutates its counter, so
        # spawning the caller's object would yield different seeds on every
        # call (and would perturb the caller's own stream).
        sequence = np.random.SeedSequence(
            entropy=random_state.entropy, spawn_key=random_state.spawn_key
        )
    elif isinstance(random_state, (int, np.integer)):
        sequence = np.random.SeedSequence(int(random_state))
    else:
        return [None] * count
    return [
        int(child.generate_state(1, dtype=np.uint64)[0] >> 1)
        for child in sequence.spawn(count)
    ]


def estimate_matrix_shard(
    matrix: DensityMatrix,
    row_of: Dict[str, int],
    shard: List[Tuple[str, str]],
    config_kwargs: Dict[str, object],
    on_insufficient: str,
) -> List[RankedPair]:
    """Estimate one pair shard against an already-built density matrix.

    The in-process reference implementation of what
    :func:`~repro.service.pool._estimate_shard_task` runs inside a pool
    worker: the plain restricted-vector path of
    :func:`~repro.core.batch.estimate_pair_list`, numerically identical to
    the serial engine's shared-rank-vector path.
    """
    cfg = TescConfig(**config_kwargs)
    return estimate_pair_list(shard, row_of, matrix, None, cfg, on_insufficient)


def estimate_matrix_pairs_sharded(
    pool,
    matrix: DensityMatrix,
    row_of: Dict[str, int],
    pair_list: Sequence[Tuple[str, str]],
    cfg: TescConfig,
    on_insufficient: str,
    num_shards: int,
) -> List[RankedPair]:
    """Fan pair estimates over the persistent pool through shared memory.

    The density matrix is published to shared memory once, each worker
    scores a round-robin slice of ``pair_list`` against it, and the blocks
    are unlinked before returning.  Results come back in deterministic
    (submission) order, so callers get the same multiset of
    :class:`~repro.core.batch.RankedPair` regardless of worker count — the
    progressive top-k engine's final re-score and the streaming ranker's
    dirty-pair re-score both rely on this for their bit-identity guarantees.

    ``pool`` is a :class:`~repro.service.pool.PersistentWorkerPool`
    (typically :func:`~repro.service.pool.global_pool`).
    """
    from repro.service.pool import _estimate_shard_task, publish_matrix, release_matrix

    shards = shard_pairs(pair_list, num_shards)
    base_kwargs = asdict(cfg)
    base_kwargs["random_state"] = None
    matrix_ref = publish_matrix(matrix)
    span_ctx = propagation()
    try:
        shard_outputs = pool.run_tasks(
            _estimate_shard_task,
            [
                (matrix_ref, row_of, shard, base_kwargs, on_insufficient, span_ctx)
                for shard in shards
            ],
            workers=num_shards,
        )
    finally:
        release_matrix(matrix_ref)
    results: List[RankedPair] = []
    for shard_result, record in shard_outputs:
        results.extend(shard_result)
        attach_remote(record)
    return results


class ParallelBatchTescEngine:
    """Column/pair-sharded TESC pair ranking over the persistent pool.

    Parameters
    ----------
    attributed:
        The attributed graph to test on.
    config:
        Default :class:`~repro.core.config.TescConfig` (same restrictions as
        the serial engine: uniform samplers only).
    workers:
        Worker-process count; see :func:`resolve_workers`.  ``1`` (the
        default) degrades to the serial engine in-process — the pool is
        never touched — so the engine is safe to use unconditionally.
    mp_context:
        Optional :mod:`multiprocessing` start-method name.  ``None`` (the
        default) shares the process-wide persistent pool; naming a method
        gives this engine a private pool with that start method, torn down
        by :meth:`close`.

    Notes
    -----
    With the default shared pool, :meth:`close` (and the context-manager
    exit) is a no-op for the pool itself: workers persist for the process
    lifetime precisely so repeated calls never pay fork start-up again.

    Examples
    --------
    >>> from repro.graph.generators import community_ring_graph
    >>> from repro.events import AttributedGraph
    >>> graph = community_ring_graph(8, 40, 5.0, 10, random_state=3)
    >>> attributed = AttributedGraph(
    ...     graph, {"a": range(0, 30), "b": range(10, 40), "c": range(160, 200)}
    ... )
    >>> config = TescConfig(sample_size=120, random_state=3)
    >>> with ParallelBatchTescEngine(attributed, config, workers=2) as engine:
    ...     ranking = engine.rank_pairs("all")
    >>> len(ranking)
    3
    """

    def __init__(
        self,
        attributed: AttributedGraph,
        config: Optional[TescConfig] = None,
        workers: Optional[int] = None,
        mp_context: Optional[str] = None,
    ) -> None:
        self.attributed = attributed
        self.config = config if config is not None else TescConfig()
        self.workers = resolve_workers(workers)
        self._serial = BatchTescEngine(attributed, self.config)
        self._private_pool = None
        self._mp_context = mp_context
        self._matrices: Dict[tuple, DensityMatrix] = {}
        self.stats = BatchStats(workers=self.workers)

    # -- pool plumbing -------------------------------------------------------

    def _pool(self):
        if self._mp_context is None:
            from repro.service.pool import global_pool

            return global_pool()
        if self._private_pool is None:
            from repro.service.pool import PersistentWorkerPool

            self._private_pool = PersistentWorkerPool(mp_context=self._mp_context)
        return self._private_pool

    def close(self) -> None:
        """Release engine-held resources (idempotent).

        A private pool (explicit ``mp_context``) is shut down; the shared
        process-wide pool deliberately survives — its whole point is to
        outlive individual engines.
        """
        if self._private_pool is not None:
            self._private_pool.shutdown()
            self._private_pool = None
        self._matrices.clear()

    def __enter__(self) -> "ParallelBatchTescEngine":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # -- the public API ------------------------------------------------------

    def rank_pairs(
        self,
        pairs: PairSpec = "all",
        top_k: Optional[int] = None,
        sort_by: str = "score",
        config: Optional[TescConfig] = None,
        on_insufficient: str = "keep",
        workers: Optional[int] = None,
    ) -> PairRanking:
        """Test every pair in ``pairs`` across the worker pool, ranked.

        Same contract as :meth:`BatchTescEngine.rank_pairs`, with results
        guaranteed identical to the serial engine's; ``workers`` optionally
        overrides the engine-level count for this call.
        """
        if sort_by not in SORT_KEYS:
            raise ConfigurationError(
                f"sort_by must be one of {SORT_KEYS}, got {sort_by!r}"
            )
        if on_insufficient not in ("keep", "raise"):
            raise ConfigurationError(
                f'on_insufficient must be "keep" or "raise", got {on_insufficient!r}'
            )
        cfg = config if config is not None else self.config
        worker_count = (
            resolve_workers(workers) if workers is not None else self.workers
        )
        pair_list = self._serial._resolve_pairs(pairs)
        if worker_count <= 1 or len(pair_list) < 2:
            # Hand the serial engine the resolved list — resolving drained
            # ``pairs`` if the caller passed a one-shot iterable.
            ranking = self._serial.rank_pairs(
                pair_list, top_k=top_k, sort_by=sort_by, config=cfg,
                on_insufficient=on_insufficient,
            )
            self._accumulate(ranking.stats)
            return ranking

        timer = Timer()
        call_stats = BatchStats(workers=worker_count)

        events = sorted({event for pair in pair_list for event in pair})
        row_of = {event: row for row, event in enumerate(events)}
        # Touching every indicator up front surfaces unknown events in the
        # parent before any worker is involved.
        self.attributed.indicator_matrix(events)
        universe = self._serial._universe(events)
        with stage("sampling"):
            sample, matrix_key = self._serial._shared_sample(
                cfg, universe, timer, call_stats
            )

        pool = self._pool()
        with stage("density", workers=worker_count):
            matrix = self._matrix(
                matrix_key + (tuple(events),), pool, sample.nodes, events, cfg,
                worker_count, timer, call_stats,
            )
        with timer.lap("estimates"), stage("estimate", workers=worker_count):
            results = estimate_matrix_pairs_sharded(
                pool, matrix, row_of, pair_list, cfg, on_insufficient,
                worker_count,
            )

        ranked = finalise_ranking(results, sort_by, top_k)

        call_stats.num_events = len(events)
        call_stats.num_pairs = len(pair_list)
        call_stats.shards = len(shard_pairs(pair_list, worker_count))
        for name in ("sampling", "densities", "estimates"):
            call_stats.timings[name] = timer.total(name)
        self._accumulate(call_stats)
        return PairRanking(
            pairs=ranked,
            vicinity_level=cfg.vicinity_level,
            sort_by=sort_by,
            alpha=cfg.alpha,
            sample=sample,
            stats=call_stats,
        )

    def _matrix(
        self,
        key: tuple,
        pool,
        sample_nodes: np.ndarray,
        events: Sequence[str],
        cfg: TescConfig,
        worker_count: int,
        timer: Timer,
        call_stats: BatchStats,
    ) -> DensityMatrix:
        """The shared density matrix for this call, pool-computed on miss.

        Cached under the same ``(sampler, universe, level, size, events)``
        key the serial engine uses, so repeated calls re-dispatch nothing.
        """
        cached = self._matrices.get(key)
        if cached is not None:
            return cached
        from repro.service.pool import pooled_density_matrix

        with timer.lap("densities"):
            matrix, bfs_calls = pooled_density_matrix(
                pool, self.attributed, sample_nodes, events,
                cfg.vicinity_level, worker_count,
            )
        call_stats.density_passes += 1
        call_stats.density_bfs_calls += bfs_calls
        while len(self._matrices) >= MAX_CACHED_MATRICES:
            del self._matrices[next(iter(self._matrices))]
        self._matrices[key] = matrix
        return matrix

    def _accumulate(self, call_stats: BatchStats) -> None:
        self.stats.num_events = call_stats.num_events
        self.stats.num_pairs += call_stats.num_pairs
        self.stats.samples_drawn += call_stats.samples_drawn
        self.stats.sample_cache_hits += call_stats.sample_cache_hits
        self.stats.density_passes += call_stats.density_passes
        self.stats.density_bfs_calls += call_stats.density_bfs_calls
        self.stats.shards = call_stats.shards
        for name, seconds in call_stats.timings.items():
            self.stats.timings[name] = self.stats.timings.get(name, 0.0) + seconds


def rank_pairs_parallel(
    attributed: AttributedGraph,
    pairs: PairSpec = "all",
    workers: Optional[int] = 0,
    top_k: Optional[int] = None,
    sort_by: str = "score",
    vicinity_level: int = 1,
    **config_kwargs,
) -> PairRanking:
    """One-call convenience wrapper around :class:`ParallelBatchTescEngine`.

    ``workers`` defaults to one per available core (``0``).  The persistent
    pool stays warm after the call — that is the point.
    """
    config = TescConfig(vicinity_level=vicinity_level, **config_kwargs)
    with ParallelBatchTescEngine(attributed, config, workers=workers) as engine:
        return engine.rank_pairs(pairs, top_k=top_k, sort_by=sort_by)
