"""Parallel sharded pair ranking over a process pool.

:class:`ParallelBatchTescEngine` is the multi-core sibling of
:class:`~repro.core.batch.BatchTescEngine`.  The serial engine already
amortises sampling, density and estimator work across a pair set; this engine
additionally fans the *per-pair* work out across worker processes:

1. **One sample, drawn once, in the parent.**  The parent process draws the
   shared reference sample over the union universe of all events exactly as
   the serial engine would (same sampler, same RNG stream), then broadcasts
   the reference-node ids to every shard.  Because each worker evaluates its
   pairs on those very nodes, every per-pair density, estimate, z-score and
   verdict is **bit-identical to the serial engine** — in exhaustive mode and
   in sampled mode alike.
2. **Pair shards, round-robin.**  The pair list is dealt round-robin across
   ``workers`` shards.  Each shard computes the density matrix and rank
   vectors only for the events its pairs touch and shares them among those
   pairs through the worker-resident :class:`BatchTescEngine` caches.
3. **Per-shard deterministic seeding.**  Each shard receives a seed derived
   from the root ``random_state`` through :class:`numpy.random.SeedSequence`
   spawning (shard ``i`` always receives the same seed for the same root),
   so any future stochastic work inside a shard is reproducible and
   independent of the number of workers.  The seed travels alongside — not
   inside — the shard's config, keeping worker caches shard-agnostic.
   Today's shards consume no randomness — the sample is drawn by the parent
   — which is what makes the bit-identity guarantee unconditional.
4. **Deterministic merge.**  Shard results are merged in the parent and
   ranked with the same total order (statistic plus event-name tie-break) the
   serial engine uses, so the final ranking does not depend on sharding or
   completion order.

Workers are plain forked/spawned processes holding a copy of the CSR arrays
and the event layer; the pool is created lazily on the first parallel call
and reused until :meth:`ParallelBatchTescEngine.close` (the engine is also a
context manager).
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.batch import (
    SORT_KEYS,
    BatchStats,
    BatchTescEngine,
    PairRanking,
    PairSpec,
    RankedPair,
    estimate_pair_list,
    finalise_ranking,
)
from repro.core.config import TescConfig
from repro.core.density import DensityMatrix
from repro.events.attributed_graph import AttributedGraph
from repro.exceptions import ConfigurationError
from repro.utils.timing import Timer


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a ``workers`` request into a concrete positive count.

    ``None`` and ``1`` mean serial; ``0`` and negative values mean "one per
    available core"; any other positive integer is used as given.
    """
    if workers is None:
        return 1
    count = int(workers)
    if count <= 0:
        return os.cpu_count() or 1
    return count


def shard_pairs(
    pair_list: Sequence[Tuple[str, str]], num_shards: int
) -> List[List[Tuple[str, str]]]:
    """Deal pairs round-robin into at most ``num_shards`` non-empty shards.

    Round-robin keeps shard sizes within one pair of each other, so the
    slowest worker finishes at most one pair's work behind the rest.
    """
    num_shards = max(1, min(int(num_shards), len(pair_list)))
    shards: List[List[Tuple[str, str]]] = [[] for _ in range(num_shards)]
    for position, pair in enumerate(pair_list):
        shards[position % num_shards].append(pair)
    return shards


def shard_seeds(
    random_state, count: int
) -> List[Optional[int]]:
    """Derive one deterministic integer seed per shard from the root state.

    Integer (or :class:`numpy.random.SeedSequence`) roots are spawned into
    independent child sequences — shard ``i`` gets the same seed for the same
    root no matter how the pair list is sharded.  ``None`` stays ``None``
    (fresh entropy), and generator roots also map to ``None`` rather than
    consuming draws from the caller's stream.
    """
    if count <= 0:
        return []
    if isinstance(random_state, np.random.SeedSequence):
        # Spawn from a snapshot: SeedSequence.spawn mutates its counter, so
        # spawning the caller's object would yield different seeds on every
        # call (and would perturb the caller's own stream).
        sequence = np.random.SeedSequence(
            entropy=random_state.entropy, spawn_key=random_state.spawn_key
        )
    elif isinstance(random_state, (int, np.integer)):
        sequence = np.random.SeedSequence(int(random_state))
    else:
        return [None] * count
    return [
        int(child.generate_state(1, dtype=np.uint64)[0] >> 1)
        for child in sequence.spawn(count)
    ]


# -- worker-process plumbing --------------------------------------------------

#: Per-process state built once by :func:`_init_worker` and reused by every
#: shard the worker handles (graph, event layer, engine with warm caches).
_WORKER_STATE: Dict[str, object] = {}

#: How many config-distinct engines (each holding density-matrix and
#: rank-vector caches) a worker process retains before evicting the oldest.
MAX_WORKER_ENGINES = 4


def _init_worker(payload: Tuple[np.ndarray, np.ndarray, Dict[str, np.ndarray]]) -> None:
    """Rebuild the attributed graph inside a worker process (runs once)."""
    from repro.graph.csr import CSRGraph

    indptr, indices, event_mapping = payload
    attributed = AttributedGraph(CSRGraph(indptr, indices), event_mapping)
    _WORKER_STATE["attributed"] = attributed
    _WORKER_STATE["engines"] = {}


def _config_key(config_kwargs: Dict[str, object]) -> tuple:
    return tuple(sorted((key, repr(value)) for key, value in config_kwargs.items()))


def _rank_shard(
    config_kwargs: Dict[str, object],
    shard: List[Tuple[str, str]],
    reference_nodes: np.ndarray,
    on_insufficient: str,
    shard_seed: Optional[int],
) -> Tuple[List[RankedPair], BatchStats]:
    """Worker entry point: estimate one pair shard on the shared sample.

    ``shard_seed`` is the shard's deterministic seed (see
    :func:`shard_seeds`).  It is deliberately *not* folded into the engine's
    config: today's shards consume no randomness (the sample was drawn by
    the parent), and keeping the config seed-free lets a pooled worker's
    density-matrix and rank-vector caches serve any shard of any call.
    Future stochastic estimators should seed their generators from it.
    """
    attributed: AttributedGraph = _WORKER_STATE["attributed"]  # type: ignore[assignment]
    engines: Dict[tuple, BatchTescEngine] = _WORKER_STATE["engines"]  # type: ignore[assignment]
    config = TescConfig(**config_kwargs)
    key = _config_key(config_kwargs)
    engine = engines.get(key)
    if engine is None:
        while len(engines) >= MAX_WORKER_ENGINES:
            del engines[next(iter(engines))]
        engine = BatchTescEngine(attributed, config)
        engines[key] = engine
    passes_before = engine.stats.density_passes
    bfs_before = engine.stats.density_bfs_calls
    timings_before = dict(engine.stats.timings)
    results = engine.estimate_pairs_on_nodes(
        shard, reference_nodes, config, on_insufficient
    )
    shard_stats = BatchStats(
        num_events=engine.stats.num_events,
        num_pairs=len(shard),
        density_passes=engine.stats.density_passes - passes_before,
        density_bfs_calls=engine.stats.density_bfs_calls - bfs_before,
        timings={
            name: seconds - timings_before.get(name, 0.0)
            for name, seconds in engine.stats.timings.items()
        },
    )
    return results, shard_stats


def estimate_matrix_shard(
    matrix: DensityMatrix,
    row_of: Dict[str, int],
    shard: List[Tuple[str, str]],
    config_kwargs: Dict[str, object],
    on_insufficient: str,
) -> List[RankedPair]:
    """Estimate one pair shard against an already-built density matrix.

    This is the worker entry point of the streaming
    :class:`~repro.streaming.ranker.ContinuousRanker`'s parallel path: the
    parent maintains the density matrix incrementally (the expensive BFS
    work) and ships only the small ``(num_events, n)`` matrix to each worker,
    which runs the same per-pair arithmetic as the serial engine on its
    shard (the plain restricted-vector path — each worker scores few pairs,
    so shared rank vectors would not amortise).  No worker-resident graph
    state is needed, so the pool stays valid across graph mutations.
    """
    cfg = TescConfig(**config_kwargs)
    return estimate_pair_list(shard, row_of, matrix, None, cfg, on_insufficient)


def estimate_matrix_pairs_sharded(
    executor,
    matrix: DensityMatrix,
    row_of: Dict[str, int],
    pair_list: Sequence[Tuple[str, str]],
    cfg: TescConfig,
    on_insufficient: str,
    num_shards: int,
) -> List[RankedPair]:
    """Fan :func:`estimate_matrix_shard` out over an executor and merge.

    The parent owns the density matrix; each shard re-runs the per-pair
    arithmetic on its round-robin slice of ``pair_list``.  Results come back
    unranked in shard-completion-independent order (futures are drained in
    submission order), so callers get the same multiset of
    :class:`~repro.core.batch.RankedPair` regardless of worker count — the
    progressive top-k engine's final re-score path relies on this for its
    bit-identity guarantee.
    """
    shards = shard_pairs(pair_list, num_shards)
    base_kwargs = asdict(cfg)
    base_kwargs["random_state"] = None
    futures = [
        executor.submit(
            estimate_matrix_shard, matrix, row_of, shard, base_kwargs,
            on_insufficient,
        )
        for shard in shards
    ]
    results: List[RankedPair] = []
    for future in futures:
        results.extend(future.result())
    return results


class ParallelBatchTescEngine:
    """Sharded multi-process TESC pair ranking.

    Parameters
    ----------
    attributed:
        The attributed graph to test on.
    config:
        Default :class:`~repro.core.config.TescConfig` (same restrictions as
        the serial engine: uniform samplers only).
    workers:
        Worker-process count; see :func:`resolve_workers`.  ``1`` (the
        default) degrades to the serial engine in-process — no pool is
        created — so the engine is safe to use unconditionally.
    mp_context:
        Optional :mod:`multiprocessing` start-method name (``"fork"``,
        ``"spawn"``, ``"forkserver"``).  Defaults to ``"fork"`` where
        available (cheap worker start-up on Linux), else the platform
        default.

    Examples
    --------
    >>> from repro.graph.generators import community_ring_graph
    >>> from repro.events import AttributedGraph
    >>> graph = community_ring_graph(8, 40, 5.0, 10, random_state=3)
    >>> attributed = AttributedGraph(
    ...     graph, {"a": range(0, 30), "b": range(10, 40), "c": range(160, 200)}
    ... )
    >>> config = TescConfig(sample_size=120, random_state=3)
    >>> with ParallelBatchTescEngine(attributed, config, workers=2) as engine:
    ...     ranking = engine.rank_pairs("all")
    >>> len(ranking)
    3
    """

    def __init__(
        self,
        attributed: AttributedGraph,
        config: Optional[TescConfig] = None,
        workers: Optional[int] = None,
        mp_context: Optional[str] = None,
    ) -> None:
        self.attributed = attributed
        self.config = config if config is not None else TescConfig()
        self.workers = resolve_workers(workers)
        self._mp_context = mp_context
        self._serial = BatchTescEngine(attributed, self.config)
        self._executor: Optional[ProcessPoolExecutor] = None
        self._executor_workers = 0
        self.stats = BatchStats(workers=self.workers)

    # -- pool lifecycle -----------------------------------------------------

    def _payload(self) -> Tuple[np.ndarray, np.ndarray, Dict[str, np.ndarray]]:
        csr = self.attributed.csr
        mapping = {
            event: self.attributed.event_nodes(event)
            for event in self.attributed.event_names()
        }
        return csr.indptr, csr.indices, mapping

    def _ensure_executor(self, workers: int) -> ProcessPoolExecutor:
        # Grow-only: a larger pool serves smaller calls (idle workers cost
        # nothing), so re-forking — which would discard every worker's warm
        # caches — happens only when more workers are genuinely needed.
        if self._executor is not None and self._executor_workers < workers:
            self.close()
        if self._executor is None:
            method = self._mp_context
            if method is None:
                available = multiprocessing.get_all_start_methods()
                method = "fork" if "fork" in available else None
            context = multiprocessing.get_context(method)
            self._executor = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=context,
                initializer=_init_worker,
                initargs=(self._payload(),),
            )
            self._executor_workers = workers
        return self._executor

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
            self._executor_workers = 0

    def __enter__(self) -> "ParallelBatchTescEngine":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # -- the public API ------------------------------------------------------

    def rank_pairs(
        self,
        pairs: PairSpec = "all",
        top_k: Optional[int] = None,
        sort_by: str = "score",
        config: Optional[TescConfig] = None,
        on_insufficient: str = "keep",
        workers: Optional[int] = None,
    ) -> PairRanking:
        """Test every pair in ``pairs`` across the worker pool, ranked.

        Same contract as :meth:`BatchTescEngine.rank_pairs`, with results
        guaranteed identical to the serial engine's; ``workers`` optionally
        overrides the engine-level count for this call.
        """
        if sort_by not in SORT_KEYS:
            raise ConfigurationError(
                f"sort_by must be one of {SORT_KEYS}, got {sort_by!r}"
            )
        if on_insufficient not in ("keep", "raise"):
            raise ConfigurationError(
                f'on_insufficient must be "keep" or "raise", got {on_insufficient!r}'
            )
        cfg = config if config is not None else self.config
        worker_count = (
            resolve_workers(workers) if workers is not None else self.workers
        )
        pair_list = self._serial._resolve_pairs(pairs)
        if worker_count <= 1 or len(pair_list) < 2:
            # Hand the serial engine the resolved list — resolving drained
            # ``pairs`` if the caller passed a one-shot iterable.
            ranking = self._serial.rank_pairs(
                pair_list, top_k=top_k, sort_by=sort_by, config=cfg,
                on_insufficient=on_insufficient,
            )
            self._accumulate(ranking.stats)
            return ranking

        timer = Timer()
        call_stats = BatchStats(workers=worker_count)

        events = sorted({event for pair in pair_list for event in pair})
        # Touching every indicator up front surfaces unknown events in the
        # parent before any processes are involved.
        self.attributed.indicator_matrix(events)
        universe = self._serial._universe(events)
        sample, _matrix_key = self._serial._shared_sample(
            cfg, universe, timer, call_stats
        )

        shards = shard_pairs(pair_list, worker_count)
        seeds = shard_seeds(cfg.random_state, len(shards))
        # Shard configs are seed-free (the seed travels separately) so a
        # worker's caches can serve any shard of any call; see _rank_shard.
        base_kwargs = asdict(cfg)
        base_kwargs["random_state"] = None
        # Never fork more processes than there are shards to hand out.
        executor = self._ensure_executor(min(worker_count, len(shards)))
        futures = []
        for shard, seed in zip(shards, seeds):
            futures.append(
                executor.submit(
                    _rank_shard, base_kwargs, shard, sample.nodes,
                    on_insufficient, seed,
                )
            )
        results: List[RankedPair] = []
        worker_density_seconds = 0.0
        with timer.lap("estimates"):
            for future in futures:
                shard_results, shard_stats = future.result()
                results.extend(shard_results)
                call_stats.density_passes += shard_stats.density_passes
                call_stats.density_bfs_calls += shard_stats.density_bfs_calls
                worker_density_seconds += shard_stats.timings.get("densities", 0.0)

        ranked = finalise_ranking(results, sort_by, top_k)

        call_stats.num_events = len(events)
        call_stats.num_pairs = len(pair_list)
        call_stats.shards = len(shards)
        for name in ("sampling", "estimates"):
            call_stats.timings[name] = timer.total(name)
        # Aggregate worker-side density seconds (summed across shards, so
        # this is CPU time; "estimates" above is the parent's wall time
        # spent waiting on the pool).
        call_stats.timings["densities"] = worker_density_seconds
        self._accumulate(call_stats)
        return PairRanking(
            pairs=ranked,
            vicinity_level=cfg.vicinity_level,
            sort_by=sort_by,
            alpha=cfg.alpha,
            sample=sample,
            stats=call_stats,
        )

    def _accumulate(self, call_stats: BatchStats) -> None:
        self.stats.num_events = call_stats.num_events
        self.stats.num_pairs += call_stats.num_pairs
        self.stats.samples_drawn += call_stats.samples_drawn
        self.stats.sample_cache_hits += call_stats.sample_cache_hits
        self.stats.density_passes += call_stats.density_passes
        self.stats.density_bfs_calls += call_stats.density_bfs_calls
        self.stats.shards = call_stats.shards
        for name, seconds in call_stats.timings.items():
            self.stats.timings[name] = self.stats.timings.get(name, 0.0) + seconds


def rank_pairs_parallel(
    attributed: AttributedGraph,
    pairs: PairSpec = "all",
    workers: Optional[int] = 0,
    top_k: Optional[int] = None,
    sort_by: str = "score",
    vicinity_level: int = 1,
    **config_kwargs,
) -> PairRanking:
    """One-call convenience wrapper around :class:`ParallelBatchTescEngine`.

    ``workers`` defaults to one per available core (``0``); the pool is torn
    down before returning.
    """
    config = TescConfig(vicinity_level=vicinity_level, **config_kwargs)
    with ParallelBatchTescEngine(attributed, config, workers=workers) as engine:
        return engine.rank_pairs(pairs, top_k=top_k, sort_by=sort_by)
