"""Synthetic stand-ins for the paper's datasets.

The paper evaluates on three datasets that are not redistributable (DBLP
snapshot from 2010, a proprietary intrusion-alert log, and a 20M-node Twitter
crawl).  Each synthetic generator reproduces the structural properties that
the corresponding experiments depend on; the substitutions are documented in
DESIGN.md.

* :mod:`repro.datasets.synthetic_dblp` — community-structured co-author-like
  graph with keyword events, including planted positively and negatively
  correlated keyword pairs (Tables 1–2, Figures 5–8).
* :mod:`repro.datasets.synthetic_intrusion` — hub-heavy alert graph with
  planted alert-pair structure reproducing the TESC-vs-TC contrasts of
  Tables 3–5.
* :mod:`repro.datasets.synthetic_twitter` — large scale-free graph used only
  for efficiency/scalability experiments (Figures 9–10).
"""

from repro.datasets.synthetic_dblp import DblpLikeDataset, make_dblp_like
from repro.datasets.synthetic_intrusion import IntrusionLikeDataset, make_intrusion_like
from repro.datasets.synthetic_twitter import make_twitter_like
from repro.datasets.registry import available_datasets, load_dataset

__all__ = [
    "DblpLikeDataset",
    "make_dblp_like",
    "IntrusionLikeDataset",
    "make_intrusion_like",
    "make_twitter_like",
    "available_datasets",
    "load_dataset",
]
