"""Dataset registry: load any synthetic dataset by name and scale."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.datasets.synthetic_dblp import make_dblp_like
from repro.datasets.synthetic_intrusion import make_intrusion_like
from repro.datasets.synthetic_twitter import make_twitter_like
from repro.exceptions import ConfigurationError
from repro.utils.rng import RandomState

#: Scale presets: multiplier applied to the default generator sizes.
_SCALE_PRESETS = {"tiny": 0.2, "small": 0.5, "default": 1.0, "large": 3.0}


def _load_dblp(scale: float, random_state: RandomState):
    return make_dblp_like(
        num_communities=max(4, int(40 * scale)),
        community_size=max(20, int(250 * scale)),
        random_state=random_state,
    )


def _load_intrusion(scale: float, random_state: RandomState):
    return make_intrusion_like(
        num_subnets=max(30, int(120 * scale)),
        subnet_size=max(10, int(40 * scale)),
        random_state=random_state,
    )


def _load_twitter(scale: float, random_state: RandomState):
    return make_twitter_like(
        num_nodes=max(1000, int(50_000 * scale)),
        random_state=random_state,
    )


_REGISTRY: Dict[str, Callable] = {
    "dblp": _load_dblp,
    "intrusion": _load_intrusion,
    "twitter": _load_twitter,
}


def available_datasets() -> List[str]:
    """Names of the loadable synthetic datasets."""
    return sorted(_REGISTRY)


def load_dataset(name: str, scale: str = "default",
                 random_state: RandomState = None):
    """Load a synthetic dataset by name.

    Parameters
    ----------
    name:
        ``"dblp"``, ``"intrusion"`` or ``"twitter"``.
    scale:
        One of ``tiny``, ``small``, ``default``, ``large`` — or a numeric
        string interpreted as a multiplier on the default sizes.
    """
    loader = _REGISTRY.get(name)
    if loader is None:
        raise ConfigurationError(
            f"unknown dataset {name!r}; available: {', '.join(available_datasets())}"
        )
    if scale in _SCALE_PRESETS:
        multiplier = _SCALE_PRESETS[scale]
    else:
        try:
            multiplier = float(scale)
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"scale must be one of {sorted(_SCALE_PRESETS)} or a number, got {scale!r}"
            ) from exc
        if multiplier <= 0:
            raise ConfigurationError(f"scale must be positive, got {multiplier}")
    return loader(multiplier, random_state)
