"""Synthetic DBLP-like dataset: a community-structured co-author graph with
keyword events.

What the real DBLP dataset provides in the paper:

* a co-author social network with strong community structure (research
  areas), ~1M nodes / 3.5M edges, whose communities exhibit topical locality
  (related areas are close in the graph, unrelated areas are many hops
  apart);
* ~190k keyword events attached to authors;
* keyword pairs that are positively correlated in the graph space because
  research communities use related keywords with similar intensity
  ("Wireless" vs "Sensor"), and pairs that are negatively correlated because
  they belong to far-apart research areas ("Texture" vs "Java").

The generator plants exactly these structures at a configurable scale:

* a **ring of communities** (:func:`repro.graph.generators.community_ring_graph`)
  whose blocks model research areas; communities adjacent on the ring share
  cross edges (related areas), while communities on opposite sides are many
  hops apart — the property that keeps 3-hop negative correlations
  meaningful;
* planted **positive pairs**: both keywords occur in the *same* contiguous
  run of communities and, within the run, with the *same per-community
  intensity* (some communities use the topic heavily, others lightly).  The
  author sets are mostly disjoint apart from a planted co-occurring subset,
  so both TESC and transaction correlation are positive — the Table 1
  phenomenon;
* planted **negative pairs**: the two keywords occupy community runs on
  *opposite sides of the ring*, with a few authors carrying both so that
  transaction correlation stays around zero or positive while TESC is
  negative — the Table 2 phenomenon;
* background keywords scattered uniformly to act as noise events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.events.attributed_graph import AttributedGraph
from repro.graph.adjacency import Graph
from repro.graph.generators import community_ring_graph
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_fraction, check_positive_int


@dataclass
class DblpLikeDataset:
    """The generated DBLP-like attributed graph plus planted ground truth."""

    attributed: AttributedGraph
    graph: Graph
    communities: List[np.ndarray]
    positive_pairs: List[Tuple[str, str]] = field(default_factory=list)
    negative_pairs: List[Tuple[str, str]] = field(default_factory=list)
    background_events: List[str] = field(default_factory=list)

    @property
    def num_communities(self) -> int:
        """Number of planted communities."""
        return len(self.communities)


def _place_with_intensities(
    rng: np.random.Generator,
    communities: Sequence[np.ndarray],
    community_ids: Sequence[int],
    intensities: Sequence[float],
    base_coverage: float,
) -> np.ndarray:
    """Place a keyword on each listed community with the given intensity.

    Community ``c`` receives the keyword on ``base_coverage * intensity_c`` of
    its members (at least one member), chosen uniformly.
    """
    chosen: List[int] = []
    for community_id, intensity in zip(community_ids, intensities):
        members = communities[community_id]
        count = int(round(base_coverage * intensity * members.size))
        count = min(members.size, max(1, count))
        chosen.extend(int(x) for x in rng.choice(members, size=count, replace=False))
    return np.array(sorted(set(chosen)), dtype=np.int64)


def make_dblp_like(
    num_communities: int = 40,
    community_size: int = 250,
    intra_degree: float = 8.0,
    inter_edges_per_link: int = 40,
    ring_neighbors: int = 1,
    peripheral_fraction: float = 0.3,
    max_chain_length: int = 4,
    num_positive_pairs: int = 5,
    num_negative_pairs: int = 5,
    num_background_keywords: int = 30,
    keyword_coverage: float = 0.6,
    communities_per_pair: int = 3,
    cooccurrence_fraction: float = 0.25,
    negative_cooccurrence_boost: float = 2.0,
    random_state: RandomState = None,
) -> DblpLikeDataset:
    """Generate the DBLP-like dataset.

    Parameters
    ----------
    num_communities, community_size:
        Ring-of-communities structure (default ~10k nodes).  The paper's DBLP
        graph is ~1M nodes; scale these up for full-scale runs.
    intra_degree:
        Expected number of intra-community co-author edges per author.
    inter_edges_per_link, ring_neighbors:
        Cross edges between each pair of ring-adjacent communities and how
        many ring neighbours each community links to.
    peripheral_fraction, max_chain_length:
        Fraction of extra low-degree "peripheral" authors attached to the
        community core in short chains (occasional co-authors).  Real
        co-author networks have a large such periphery; it is what keeps
        ``V^h_a`` from covering the entire graph at h = 3 and therefore what
        makes high-level negative correlations plantable (Section 5.2).
    num_positive_pairs / num_negative_pairs:
        How many correlated keyword pairs to plant (Tables 1 and 2 report 5
        of each).
    num_background_keywords:
        Uncorrelated keywords scattered uniformly over the graph.
    keyword_coverage:
        Peak fraction of a community's members that carry a planted keyword
        (scaled by the per-community intensity).
    communities_per_pair:
        How many consecutive communities one planted keyword spans.
    cooccurrence_fraction:
        For positive pairs, the fraction of keyword-a authors that also carry
        keyword b.  The default (0.25) makes positive pairs also positive
        under transaction correlation, matching Table 1 where semantically
        related keywords have both high TESC and high TC.
    negative_cooccurrence_boost:
        For negative pairs, the number of authors carrying both keywords is
        ``boost * |V_a| |V_b| / |V|`` — ``boost > 1`` makes the transaction
        correlation mildly *positive* even though the keywords live in
        far-apart communities, reproducing the Table 2 contrast
        (positive TC, negative TESC).
    random_state:
        Seed for the whole dataset.
    """
    check_positive_int(num_communities, "num_communities")
    check_positive_int(community_size, "community_size")
    check_positive_int(communities_per_pair, "communities_per_pair")
    check_positive_int(inter_edges_per_link, "inter_edges_per_link")
    check_positive_int(ring_neighbors, "ring_neighbors")
    check_fraction(keyword_coverage, "keyword_coverage")
    check_fraction(cooccurrence_fraction, "cooccurrence_fraction")
    check_fraction(peripheral_fraction, "peripheral_fraction")
    check_positive_int(max_chain_length, "max_chain_length")
    if intra_degree <= 0:
        raise ValueError("intra_degree must be positive")
    if negative_cooccurrence_boost < 0:
        raise ValueError("negative_cooccurrence_boost must be non-negative")
    if num_communities < 2 * communities_per_pair + 2:
        raise ValueError(
            "need at least 2 * communities_per_pair + 2 communities to plant "
            "negative pairs on opposite sides of the ring"
        )
    rng = ensure_rng(random_state)

    total_nodes = num_communities * community_size
    graph = community_ring_graph(
        num_communities,
        community_size,
        intra_degree,
        inter_edges_per_link,
        neighbors_each_side=ring_neighbors,
        random_state=rng,
    )
    communities = [
        np.arange(index * community_size, (index + 1) * community_size, dtype=np.int64)
        for index in range(num_communities)
    ]

    # Peripheral authors: short chains hanging off random core authors.
    num_peripheral = int(round(peripheral_fraction * total_nodes))
    attached = 0
    while attached < num_peripheral:
        chain_length = int(rng.integers(1, max_chain_length + 1))
        chain_length = min(chain_length, num_peripheral - attached)
        anchor = int(rng.integers(0, total_nodes))
        previous = anchor
        for _ in range(chain_length):
            new_node = graph.add_node()
            graph.add_edge(previous, new_node)
            previous = new_node
            attached += 1
    total_nodes = graph.num_nodes

    events: Dict[str, np.ndarray] = {}
    positive_pairs: List[Tuple[str, str]] = []
    negative_pairs: List[Tuple[str, str]] = []

    # Planted pairs are anchored at evenly spaced ring positions so the
    # different pairs do not pile onto the same communities.
    anchor_step = max(1, num_communities // max(num_positive_pairs + num_negative_pairs, 1))

    def run_from(anchor: int) -> List[int]:
        return [(anchor + offset) % num_communities for offset in range(communities_per_pair)]

    # Planted positive pairs: same run of communities, same per-community
    # intensity, mostly different authors.
    for index in range(num_positive_pairs):
        anchor = (index * anchor_step) % num_communities
        group = run_from(anchor)
        # Decaying intensities: the topic's "home" community uses it heavily,
        # the others progressively less — this shared gradient is what makes
        # the densities of the two keywords move together.
        intensities = [1.0 / (2 ** position) for position in range(len(group))]
        name_a = f"pos_a_{index}"
        name_b = f"pos_b_{index}"
        nodes_a = _place_with_intensities(rng, communities, group, intensities,
                                          keyword_coverage)
        nodes_b = _place_with_intensities(rng, communities, group, intensities,
                                          keyword_coverage)
        nodes_b = np.setdiff1d(nodes_b, nodes_a)
        overlap_count = max(1, int(cooccurrence_fraction * nodes_a.size))
        overlap = rng.choice(nodes_a, size=min(overlap_count, nodes_a.size), replace=False)
        nodes_b = np.union1d(nodes_b, overlap)
        events[name_a] = nodes_a
        events[name_b] = nodes_b
        positive_pairs.append((name_a, name_b))

    # Planted negative pairs: community runs on opposite sides of the ring,
    # plus a handful of authors carrying both keywords.
    for index in range(num_negative_pairs):
        anchor = ((num_positive_pairs + index) * anchor_step) % num_communities
        group_a = run_from(anchor)
        group_b = run_from((anchor + num_communities // 2) % num_communities)
        intensities = [1.0 / (2 ** position) for position in range(communities_per_pair)]
        name_a = f"neg_a_{index}"
        name_b = f"neg_b_{index}"
        nodes_a = _place_with_intensities(rng, communities, group_a, intensities,
                                          keyword_coverage)
        nodes_b = _place_with_intensities(rng, communities, group_b, intensities,
                                          keyword_coverage)
        expected_overlap = nodes_a.size * nodes_b.size / total_nodes
        shared = max(1, int(round(negative_cooccurrence_boost * expected_overlap)))
        shared_nodes = rng.choice(nodes_a, size=min(shared, nodes_a.size), replace=False)
        nodes_b = np.union1d(nodes_b, shared_nodes)
        events[name_a] = nodes_a
        events[name_b] = nodes_b
        negative_pairs.append((name_a, name_b))

    # Background keywords: uniformly scattered, independent of structure.
    background: List[str] = []
    for index in range(num_background_keywords):
        name = f"bg_{index}"
        size = int(rng.integers(20, max(21, total_nodes // 50)))
        events[name] = np.sort(rng.choice(total_nodes, size=size, replace=False))
        background.append(name)

    attributed = AttributedGraph(graph, events)
    return DblpLikeDataset(
        attributed=attributed,
        graph=graph,
        communities=communities,
        positive_pairs=positive_pairs,
        negative_pairs=negative_pairs,
        background_events=background,
    )
