"""Synthetic Intrusion-like dataset: an alert graph with planted alert pairs.

What the real Intrusion dataset provides in the paper:

* a computer-network graph derived from intrusion-alert logs (~200k nodes,
  ~700k edges) containing "several nodes with very high degrees (around
  50k)", so its diameter is much lower than DBLP's;
* 545 alert types as events;
* alert pairs with high 1-hop **positive TESC but near-zero or negative TC**
  (Table 3) — attackers alternate related techniques across hosts of a
  subnet, so the alerts co-occur in neighbourhoods but rarely on the same
  host;
* alert pairs with high 2-hop **negative TESC** (Table 4) — techniques tied
  to different platforms live in different parts of the network;
* **rare** positive pairs (tens of occurrences) that proximity-pattern
  mining misses because of its support threshold (Table 5).

The generator builds a hub-and-subnet topology (each subnet is a star of
hosts around a gateway, gateways share a low-diameter backbone with a few
huge hubs) and plants alert events with exactly those three behaviours.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.events.attributed_graph import AttributedGraph
from repro.graph.adjacency import Graph
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_positive_int


@dataclass
class IntrusionLikeDataset:
    """The generated Intrusion-like attributed graph plus planted ground truth."""

    attributed: AttributedGraph
    graph: Graph
    subnets: List[np.ndarray]
    positive_pairs: List[Tuple[str, str]] = field(default_factory=list)
    negative_pairs: List[Tuple[str, str]] = field(default_factory=list)
    rare_pairs: List[Tuple[str, str]] = field(default_factory=list)
    background_events: List[str] = field(default_factory=list)


def _build_topology(
    rng: np.random.Generator,
    num_subnets: int,
    subnet_size: int,
    num_hubs: int,
    extra_backbone_edges: int,
) -> Tuple[Graph, List[np.ndarray]]:
    """Hub-and-subnet topology: stars around gateways, gateways on a backbone."""
    num_hosts = num_subnets * subnet_size
    total = num_hosts + num_subnets + num_hubs  # hosts + gateways + hubs
    graph = Graph(total)
    subnets: List[np.ndarray] = []

    gateway_start = num_hosts
    hub_start = num_hosts + num_subnets

    for subnet_index in range(num_subnets):
        gateway = gateway_start + subnet_index
        members = np.arange(
            subnet_index * subnet_size, (subnet_index + 1) * subnet_size, dtype=np.int64
        )
        for host in members:
            graph.add_edge(int(host), gateway)
        # Intra-subnet host-host links: hosts of one subnet talk to each
        # other, so a host's 1-hop neighbourhood sees several of its
        # siblings (not just the gateway).
        for host in members:
            peer_count = min(members.size - 1, 5)
            peers = rng.choice(members, size=peer_count, replace=False)
            for peer in peers:
                if int(peer) != int(host):
                    graph.add_edge(int(host), int(peer))
        subnets.append(members)
        # Every gateway connects to one or two hubs (the ~50k-degree nodes).
        primary_hub = hub_start + int(rng.integers(0, num_hubs))
        graph.add_edge(gateway, primary_hub)
        if num_hubs > 1 and rng.random() < 0.5:
            secondary = hub_start + int(rng.integers(0, num_hubs))
            if secondary != gateway:
                graph.add_edge(gateway, secondary)

    # Hubs form a clique; a few random gateway-gateway backbone edges.
    for i in range(num_hubs):
        for j in range(i + 1, num_hubs):
            graph.add_edge(hub_start + i, hub_start + j)
    for _ in range(extra_backbone_edges):
        u = gateway_start + int(rng.integers(0, num_subnets))
        v = gateway_start + int(rng.integers(0, num_subnets))
        if u != v:
            graph.add_edge(u, v)
    return graph, subnets


def make_intrusion_like(
    num_subnets: int = 120,
    subnet_size: int = 40,
    num_hubs: int = 4,
    num_positive_pairs: int = 5,
    num_negative_pairs: int = 5,
    num_rare_pairs: int = 2,
    num_background_alerts: int = 20,
    alerts_per_subnet: float = 0.5,
    random_state: RandomState = None,
) -> IntrusionLikeDataset:
    """Generate the Intrusion-like dataset (default ~5k nodes).

    Planted structure:

    * **positive pairs** (Table 3): the two alerts are raised on *alternating*
      hosts of the same subnets — high 1-hop TESC, near-zero (or negative)
      transaction correlation because the same host rarely gets both.
    * **negative pairs** (Table 4): the two alerts target disjoint groups of
      subnets that only meet at the backbone — negative 2-hop TESC and mildly
      negative TC.
    * **rare pairs** (Table 5): the same alternating placement but confined
      to very few hosts (tens of occurrences), below the pFP support
      threshold of proximity-pattern mining yet still detectable by TESC.
    """
    check_positive_int(num_subnets, "num_subnets")
    check_positive_int(subnet_size, "subnet_size")
    check_positive_int(num_hubs, "num_hubs")
    if num_subnets < 2 * (num_positive_pairs + num_negative_pairs) + num_rare_pairs:
        raise ValueError("not enough subnets to plant the requested pairs disjointly")
    rng = ensure_rng(random_state)

    graph, subnets = _build_topology(
        rng, num_subnets, subnet_size, num_hubs, extra_backbone_edges=num_subnets // 4
    )
    events: Dict[str, np.ndarray] = {}
    positive_pairs: List[Tuple[str, str]] = []
    negative_pairs: List[Tuple[str, str]] = []
    rare_pairs: List[Tuple[str, str]] = []

    subnet_order = list(rng.permutation(num_subnets))
    cursor = 0

    def next_subnets(count: int) -> List[int]:
        nonlocal cursor
        chosen = [int(subnet_order[(cursor + offset) % num_subnets]) for offset in range(count)]
        cursor += count
        return chosen

    # Positive pairs: alternate the two alerts across the hosts of shared
    # subnets, with a per-subnet attack intensity so both alerts' densities
    # rise and fall together from subnet to subnet.
    for index in range(num_positive_pairs):
        targets = next_subnets(max(2, int(num_subnets * 0.15)))
        nodes_a: List[int] = []
        nodes_b: List[int] = []
        for subnet_id in targets:
            members = subnets[subnet_id]
            intensity = float(rng.uniform(0.1, 1.0))
            count = max(2, int(round(2.0 * alerts_per_subnet * intensity * members.size)))
            attacked = rng.choice(members, size=min(count, members.size), replace=False)
            for position, host in enumerate(np.sort(attacked)):
                (nodes_a if position % 2 == 0 else nodes_b).append(int(host))
        name_a, name_b = f"alert_pos_a_{index}", f"alert_pos_b_{index}"
        events[name_a] = np.array(sorted(set(nodes_a)), dtype=np.int64)
        events[name_b] = np.array(sorted(set(nodes_b)), dtype=np.int64)
        positive_pairs.append((name_a, name_b))

    # Negative pairs: the two alerts hit disjoint subnet groups.
    for index in range(num_negative_pairs):
        group = next_subnets(max(2, int(num_subnets * 0.12)))
        half = len(group) // 2
        group_a, group_b = group[:half], group[half:]
        nodes_a = []
        nodes_b = []
        for subnet_id in group_a:
            members = subnets[subnet_id]
            count = max(2, int(alerts_per_subnet * members.size))
            nodes_a.extend(int(x) for x in rng.choice(members, size=min(count, members.size),
                                                      replace=False))
        for subnet_id in group_b:
            members = subnets[subnet_id]
            count = max(2, int(alerts_per_subnet * members.size))
            nodes_b.extend(int(x) for x in rng.choice(members, size=min(count, members.size),
                                                      replace=False))
        name_a, name_b = f"alert_neg_a_{index}", f"alert_neg_b_{index}"
        events[name_a] = np.array(sorted(set(nodes_a)), dtype=np.int64)
        events[name_b] = np.array(sorted(set(nodes_b)), dtype=np.int64)
        negative_pairs.append((name_a, name_b))

    # Rare pairs: the two alerts occur in *linked pairs* on neighbouring hosts
    # (an attacker compromises a host with technique a, then probes one of its
    # neighbours with technique b), confined to a handful of hosts spread over
    # a few subnets with a graded per-subnet intensity.  TESC sees both the
    # local co-location and the shared gradient, but the per-neighbourhood
    # frequency stays below proximity-pattern-mining support thresholds.
    for index in range(num_rare_pairs):
        targets = next_subnets(4)
        nodes_a = []
        nodes_b = []
        per_subnet_counts = [2, 3, 4, 5]
        for subnet_id, count in zip(targets, per_subnet_counts):
            members = subnets[subnet_id]
            member_set = set(int(x) for x in members)
            sources = rng.choice(members, size=min(count, members.size), replace=False)
            for source in sources:
                source = int(source)
                nodes_a.append(source)
                # Technique b lands either on the compromised host itself or
                # on one of its in-subnet neighbours.
                if rng.random() < 0.5:
                    nodes_b.append(source)
                    continue
                neighbours = [
                    int(x) for x in graph.neighbors(source) if int(x) in member_set
                ]
                if neighbours:
                    nodes_b.append(int(neighbours[int(rng.integers(0, len(neighbours)))]))
                else:
                    nodes_b.append(source)
        name_a, name_b = f"alert_rare_a_{index}", f"alert_rare_b_{index}"
        events[name_a] = np.array(sorted(set(nodes_a)), dtype=np.int64)
        events[name_b] = np.array(sorted(set(nodes_b)), dtype=np.int64)
        rare_pairs.append((name_a, name_b))

    # Background alerts scattered uniformly over hosts.
    background: List[str] = []
    num_hosts = num_subnets * subnet_size
    for index in range(num_background_alerts):
        name = f"alert_bg_{index}"
        size = int(rng.integers(20, max(21, num_hosts // 20)))
        events[name] = np.sort(rng.choice(num_hosts, size=size, replace=False))
        background.append(name)

    attributed = AttributedGraph(graph, events)
    return IntrusionLikeDataset(
        attributed=attributed,
        graph=graph,
        subnets=subnets,
        positive_pairs=positive_pairs,
        negative_pairs=negative_pairs,
        rare_pairs=rare_pairs,
        background_events=background,
    )
