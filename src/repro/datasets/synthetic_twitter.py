"""Synthetic Twitter-like graph for scalability experiments.

The paper's Twitter dataset (20M nodes, 0.16B edges) carries no events; it is
used purely to measure the running time of the sampling algorithms and of the
h-hop BFS / z-score phases (Figures 9 and 10).  Any large scale-free,
small-diameter graph exercises the same code paths, so the reproduction uses
a Barabási–Albert-style generator at a configurable scale.
"""

from __future__ import annotations

from repro.graph.generators import barabasi_albert_graph
from repro.utils.rng import RandomState
from repro.utils.validation import check_positive_int

#: The node count of the paper's Twitter snapshot, for reference when scaling.
PAPER_TWITTER_NODES = 20_000_000

#: The edge count of the paper's Twitter snapshot.
PAPER_TWITTER_EDGES = 160_000_000


def make_twitter_like(
    num_nodes: int = 50_000,
    edges_per_node: int = 8,
    random_state: RandomState = None,
    as_csr: bool = True,
):
    """Generate a Twitter-like scale-free graph.

    Parameters
    ----------
    num_nodes:
        Graph size.  The default (50k) keeps the benchmark suite fast; the
        paper-scale run would use 20M (the shapes of the timing curves do
        not depend on the absolute size).
    edges_per_node:
        Preferential-attachment edges added per node (the paper's Twitter
        subgraph has average degree ~16, i.e. 8 undirected edges per node).
    as_csr:
        Return the immutable CSR form (default) or the mutable graph.
    """
    check_positive_int(num_nodes, "num_nodes")
    check_positive_int(edges_per_node, "edges_per_node")
    graph = barabasi_albert_graph(num_nodes, edges_per_node, random_state=random_state)
    if as_csr:
        return graph.to_csr()
    return graph
