"""Correlation-as-a-service: the persistent execution layer.

The batch/streaming engines in :mod:`repro.core` and :mod:`repro.streaming`
answer one caller inside one process.  This package turns them into a
long-lived *service*:

* :mod:`repro.service.pool` — a process-wide persistent worker pool, spawned
  once and reused by every parallel call (replacing the fork-per-call pools
  that BENCH_pr5 showed losing to serial execution), plus the
  :class:`~repro.service.pool.CircuitBreaker`/:class:`~repro.service.pool.PoolSupervisor`
  pair that trips the engine into serial fallback when workers keep dying;
* :mod:`repro.service.shm` — :mod:`multiprocessing.shared_memory` plumbing
  so datasets, reference samples and density matrices cross the process
  boundary as shared blocks instead of per-call pickles;
* :mod:`repro.service.engine` — :class:`~repro.service.engine.ServiceEngine`,
  the epoch-aware request executor with per-``(pair, epoch)`` result caching
  layered on :class:`~repro.sampling.cache.SampleMemo`;
* :mod:`repro.service.server` / :mod:`repro.service.client` — a local socket
  server speaking newline-delimited JSON and its retrying, reconnecting
  client;
* :mod:`repro.service.admission` — bounded-queue admission control
  (429-style rejection, queue timeouts, request deadlines) so many
  concurrent clients degrade gracefully;
* :mod:`repro.service.faults` — the deterministic fault-injection registry
  the chaos suite arms to rehearse worker kills, dropped sockets, failed
  allocations and fsync errors on demand.

Every answer the service produces is bit-identical to the serial in-process
engines for the same seed — asserted throughout :mod:`tests.service` and,
under injected faults, :mod:`tests.chaos`.
"""

from repro.service.admission import AdmissionController, AdmissionStats
from repro.service.client import CorrelationClient, RetryStats
from repro.service.engine import ServiceEngine
from repro.service.pool import (
    CircuitBreaker,
    PersistentWorkerPool,
    PoolHealth,
    PoolSupervisor,
    WorkerCrashedError,
    global_pool,
    shutdown_global_pool,
)
from repro.service.protocol import (
    BadRequestError,
    ConnectionLostError,
    OverloadedError,
    RemoteError,
    RequestTimeoutError,
    ServiceError,
    UnavailableError,
)
from repro.service.server import CorrelationServer

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "BadRequestError",
    "CircuitBreaker",
    "ConnectionLostError",
    "CorrelationClient",
    "CorrelationServer",
    "OverloadedError",
    "PersistentWorkerPool",
    "PoolHealth",
    "PoolSupervisor",
    "RemoteError",
    "RequestTimeoutError",
    "RetryStats",
    "ServiceEngine",
    "ServiceError",
    "UnavailableError",
    "WorkerCrashedError",
    "global_pool",
    "shutdown_global_pool",
]
