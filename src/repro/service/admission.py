"""Admission control: bounded concurrency with graceful degradation.

Many clients hitting one correlation server must degrade into clean,
*bounded* behaviour, never into unbounded queues or hangs.  The
:class:`AdmissionController` enforces two limits:

* at most ``max_concurrency`` requests execute at once;
* at most ``max_queue`` further requests wait for a slot — anything beyond
  that is rejected immediately with :class:`~repro.service.protocol.OverloadedError`
  (the HTTP-429 analogue), and a waiter that cannot start within
  ``queue_timeout`` seconds gives up with
  :class:`~repro.service.protocol.RequestTimeoutError` (the 408 analogue).

Both error paths leave the controller's counters consistent, so a burst of
rejected work never poisons later requests — asserted by the concurrency
stress suite.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Optional

from repro.obs.registry import NULL_REGISTRY
from repro.service.protocol import OverloadedError, RequestTimeoutError


@dataclass
class AdmissionStats:
    """Lifetime counters of one :class:`AdmissionController`."""

    admitted: int = 0
    rejected: int = 0
    timed_out: int = 0
    peak_running: int = 0
    peak_waiting: int = 0


class AdmissionController:
    """Counting-semaphore admission with a bounded wait queue.

    Parameters
    ----------
    max_concurrency:
        How many requests may execute simultaneously.
    max_queue:
        How many requests may wait for a slot before new arrivals are
        rejected outright.
    queue_timeout:
        Longest a request may wait for a slot, in seconds (``None`` waits
        indefinitely — only sensible in tests).
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`; mirrors the lifetime
        counters into ``tesc_admission_*_total`` and exposes live queue
        depth through pull gauges.

    Use as a context manager around request execution::

        with controller.admit():
            ... handle the request ...
    """

    def __init__(
        self,
        max_concurrency: int = 4,
        max_queue: int = 16,
        queue_timeout: Optional[float] = 30.0,
        retry_after: Optional[float] = 0.05,
        metrics=None,
    ) -> None:
        self.max_concurrency = max(1, int(max_concurrency))
        self.max_queue = max(0, int(max_queue))
        self.queue_timeout = queue_timeout
        #: Backoff hint stamped on every 429 (``None`` sends no hint).
        self.retry_after = retry_after
        self._condition = threading.Condition()
        self._running = 0
        self._waiting = 0
        self.stats = AdmissionStats()
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._m_admitted = registry.counter(
            "tesc_admission_admitted_total",
            "Gated requests that claimed an execution slot.",
        )
        self._m_rejected = registry.counter(
            "tesc_admission_rejected_total",
            "Gated requests rejected outright with 429 (queue full).",
        )
        self._m_timed_out = registry.counter(
            "tesc_admission_timed_out_total",
            "Queued requests that gave up with 408 before a slot freed.",
        )
        registry.gauge(
            "tesc_admission_running",
            "Requests currently holding an execution slot.",
        ).set_function(lambda: self._running)
        registry.gauge(
            "tesc_admission_queue_depth",
            "Requests currently queued for an execution slot.",
        ).set_function(lambda: self._waiting)

    def admit(self, deadline_at: Optional[float] = None) -> "_Admission":
        """Claim an execution slot (or raise), released by context exit.

        ``deadline_at`` is the request's absolute monotonic deadline; when
        set it caps the queue wait below ``queue_timeout``, so a request
        whose budget expires while queued fails fast with a retryable 408
        instead of holding a queue slot it can no longer use.
        """
        deadline = (
            None if self.queue_timeout is None
            else time.monotonic() + self.queue_timeout
        )
        if deadline_at is not None:
            deadline = deadline_at if deadline is None else min(deadline, deadline_at)
        with self._condition:
            if self._running >= self.max_concurrency:
                if self._waiting >= self.max_queue:
                    self.stats.rejected += 1
                    self._m_rejected.inc()
                    error = OverloadedError(
                        f"server overloaded: {self._running} running, "
                        f"{self._waiting} queued (limits: "
                        f"{self.max_concurrency} running, {self.max_queue} queued)"
                    )
                    error.retry_after = self.retry_after
                    raise error
                self._waiting += 1
                self.stats.peak_waiting = max(self.stats.peak_waiting, self._waiting)
                try:
                    while self._running >= self.max_concurrency:
                        remaining = (
                            None if deadline is None
                            else deadline - time.monotonic()
                        )
                        if remaining is not None and remaining <= 0:
                            self.stats.timed_out += 1
                            self._m_timed_out.inc()
                            raise RequestTimeoutError(
                                "request timed out waiting for an execution "
                                "slot (queue timeout or request deadline)"
                            )
                        self._condition.wait(remaining)
                finally:
                    self._waiting -= 1
            self._running += 1
            self.stats.admitted += 1
            self._m_admitted.inc()
            self.stats.peak_running = max(self.stats.peak_running, self._running)
        return _Admission(self)

    def _release(self) -> None:
        with self._condition:
            self._running -= 1
            self._condition.notify()

    @property
    def running(self) -> int:
        """Requests currently executing."""
        return self._running

    @property
    def waiting(self) -> int:
        """Requests currently queued for a slot."""
        return self._waiting


class _Admission:
    """Context manager releasing one admitted slot."""

    def __init__(self, controller: AdmissionController) -> None:
        self._controller = controller
        self._released = False

    def __enter__(self) -> "_Admission":
        return self

    def __exit__(self, *_exc) -> None:
        if not self._released:
            self._released = True
            self._controller._release()
