"""The correlation server: sockets, dispatch, backpressure, lifecycle.

:class:`CorrelationServer` owns one :class:`~repro.service.engine.ServiceEngine`
and serves it over a loopback TCP socket speaking the newline-delimited JSON
protocol of :mod:`repro.service.protocol`.  Process model:

* the **worker pool** (the process-wide persistent pool) is spawned once, in
  :meth:`start`, *before* any request thread exists — forked workers must
  never inherit a threaded parent;
* one daemon **accept thread** hands each connection to a daemon
  **connection thread**; connections are cheap because all heavy state lives
  in the engine and the pool;
* compute methods (``rank``/``topk``/``stream``) pass through the
  :class:`~repro.service.admission.AdmissionController` — bounded
  concurrency, bounded queue, 429/408 rejections — while ``ping``/``status``
  always answer, so health checks keep working under overload;
* :meth:`close` stops the listener, drains connection threads, and releases
  the engine's caches and shared-memory publications.  The global worker
  pool deliberately survives, warm, for the next server or engine.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Callable, Dict, Optional, Tuple, Union

from repro.core.config import TescConfig
from repro.events.attributed_graph import AttributedGraph
from repro.exceptions import DeadlineExceededError, ReproError
from repro.obs import MetricsHTTPServer, stage, trace
from repro.service import faults
from repro.service.admission import AdmissionController
from repro.service.engine import ServiceEngine
from repro.service.protocol import (
    BadRequestError,
    RequestTimeoutError,
    ServiceError,
    decode_line,
    encode,
    error_response,
    ok_response,
    parse_at_epoch,
    parse_config_overrides,
    parse_deadline,
    parse_pairs,
    parse_rid,
    parse_sort_and_k,
)
from repro.storage.checkpoint import CheckpointStore, digest_string
from repro.storage.recovery import RecoveryReport, recover
from repro.streaming.delta import WriteAheadLog
from repro.streaming.dynamic_graph import DynamicAttributedGraph
from repro.utils import deadlines

#: Methods that skip admission control (cheap, must answer under overload).
#: ``checkpoint`` is ungated deliberately: it runs off the commit path
#: against a leased snapshot, and an operator must be able to force one
#: while the service is overloaded.
_UNGATED_METHODS = frozenset(
    {"ping", "status", "metrics", "shutdown", "checkpoint"}
)


class CorrelationServer:
    """Serve ``rank``/``topk``/``stream`` for one graph over a local socket.

    Parameters
    ----------
    graph:
        The graph to serve (a
        :class:`~repro.streaming.dynamic_graph.DynamicAttributedGraph` if
        ``stream`` commits should be accepted).
    config:
        Default :class:`~repro.core.config.TescConfig` for all requests.
    workers:
        Worker processes in the persistent pool (``1`` = compute in the
        request thread).
    host / port:
        Bind address; port ``0`` (the default) picks a free port, exposed
        via :attr:`address` after :meth:`start`.
    max_concurrency / max_queue / queue_timeout:
        Admission-control limits (see
        :class:`~repro.service.admission.AdmissionController`).
    throttle:
        Optional hook called as ``throttle(method)`` at the start of every
        gated request *while holding its admission slot* — the concurrency
        tests use it to pin requests in flight deterministically.
    default_top_k:
        Server-side default result cap: ``rank`` requests without a
        ``top_k`` are truncated to this many pairs, and ``topk`` requests
        may omit ``k`` to mean it (``tesc serve --top-k``).  ``None`` (the
        default) keeps full rankings.
    metrics_port:
        When not ``None``, :meth:`start` also serves the engine's metrics
        registry in Prometheus text exposition over HTTP on this port
        (``0`` picks a free one — see :attr:`metrics_address`).  The same
        data is always available through the ungated ``metrics`` protocol
        verb regardless of this setting.
    slow_request_seconds:
        Requests slower than this are emitted as JSON lines (span tree
        included) through the ``repro.obs.slowlog`` logger; ``None``
        disables the slow-request log.
    wal:
        A write-ahead log path (or an open
        :class:`~repro.streaming.delta.WriteAheadLog`).  Requires a dynamic
        graph.  Batches already committed to the log are **replayed into
        the graph here**, before the engine exists — so a SIGKILL'd server
        restarted over the same base graph files and the same WAL resumes
        at the last committed epoch — and every subsequent ``stream``
        commit is durably appended before it applies.
    store:
        A checkpoint-store directory (or an open
        :class:`~repro.storage.checkpoint.CheckpointStore`).  Requires
        ``wal``.  Boot runs the bounded recovery ladder
        (:func:`~repro.storage.recovery.recover`): newest valid checkpoint
        restored, only the WAL tail past it replayed — with graceful
        fallback through older checkpoints down to full replay.  The
        outcome is exposed as :attr:`recovery` and in ``tesc status``.
    checkpoint_interval / checkpoint_retain:
        Background-checkpoint cadence in seconds (``None`` disables the
        thread; the ``checkpoint`` verb still works) and how many
        checkpoints to keep.

    Usable as a context manager::

        with CorrelationServer(graph, cfg) as server:
            client = CorrelationClient(*server.address)
    """

    def __init__(
        self,
        graph: AttributedGraph,
        config: Optional[TescConfig] = None,
        workers: Optional[int] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_concurrency: int = 4,
        max_queue: int = 16,
        queue_timeout: Optional[float] = 30.0,
        throttle: Optional[Callable[[str], None]] = None,
        default_top_k: Optional[int] = None,
        metrics_port: Optional[int] = None,
        slow_request_seconds: Optional[float] = None,
        wal: Optional[Union[str, WriteAheadLog]] = None,
        store: Optional[Union[str, CheckpointStore]] = None,
        checkpoint_interval: Optional[float] = None,
        checkpoint_retain: int = 2,
    ) -> None:
        self.replayed_batches = 0
        self.recovery: Optional[RecoveryReport] = None
        if store is not None and wal is None:
            raise ValueError(
                "--store needs --wal: a checkpoint records the WAL offset "
                "it covers"
            )
        if wal is not None:
            if not isinstance(graph, DynamicAttributedGraph):
                raise ValueError(
                    "--wal needs a dynamic graph: write-ahead logging "
                    "records stream commits"
                )
            if not isinstance(wal, WriteAheadLog):
                wal = WriteAheadLog(wal)
            if store is not None and not isinstance(store, CheckpointStore):
                store = CheckpointStore(store, retain=checkpoint_retain)
            resolved_config = config if config is not None else TescConfig()
            digest = digest_string(
                ServiceEngine._config_digest(resolved_config, persistent=True)
            )
            self.recovery = recover(
                graph, wal, store=store, config_digest=digest
            )
            self.replayed_batches = self.recovery.replayed_batches
        self.engine = ServiceEngine(
            graph, config, workers=workers,
            slow_request_seconds=slow_request_seconds,
            wal=wal,
            store=store,
            checkpoint_interval=checkpoint_interval,
            checkpoint_retain=checkpoint_retain,
        )
        if self.recovery is not None:
            self.engine.record_recovery(self.recovery)
        self.default_top_k = None if default_top_k is None else int(default_top_k)
        self.admission = AdmissionController(
            max_concurrency=max_concurrency,
            max_queue=max_queue,
            queue_timeout=queue_timeout,
            metrics=self.engine.metrics,
        )
        self._host = host
        self._requested_port = port
        self._throttle = throttle
        self._metrics_port = metrics_port
        self._metrics_server: Optional[MetricsHTTPServer] = None
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._connections: set = set()
        self._connections_lock = threading.Lock()
        self._stopping = threading.Event()
        self._started = False

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` the server is bound to (valid after start)."""
        if self._listener is None:
            raise RuntimeError("server is not started")
        return self._listener.getsockname()[:2]

    @property
    def metrics_address(self) -> Tuple[str, int]:
        """``(host, port)`` of the Prometheus endpoint (needs metrics_port)."""
        if self._metrics_server is None:
            raise RuntimeError(
                "metrics endpoint is not running (start the server with "
                "metrics_port=...)"
            )
        return self._metrics_server.address

    def start(self) -> "CorrelationServer":
        """Bind, pre-spawn the worker pool, and begin accepting requests."""
        if self._started:
            return self
        if self.engine.workers > 1:
            # Fork the workers while this process is still single-threaded —
            # a fork after the accept/connection threads exist could inherit
            # locks held mid-operation.
            from repro.service.pool import global_pool

            global_pool().ensure(self.engine.workers)
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._requested_port))
        listener.listen(64)
        self._listener = listener
        if self._metrics_port is not None:
            self._metrics_server = MetricsHTTPServer(
                self.engine.metrics, host=self._host, port=self._metrics_port
            ).start()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="tesc-serve-accept", daemon=True
        )
        self._accept_thread.start()
        self._started = True
        return self

    def close(self) -> None:
        """Stop accepting, close live connections, drop engine state."""
        if not self._started or self._stopping.is_set():
            self._stopping.set()
            return
        self._stopping.set()
        listener = self._listener
        if listener is not None:
            # accept() does not reliably return when its socket is closed
            # under it; a throwaway self-connection wakes the loop first so
            # the join below is prompt instead of riding out its timeout.
            try:
                wake = socket.create_connection(
                    listener.getsockname(), timeout=1.0
                )
                wake.close()
            except OSError:  # pragma: no cover - listener already dead
                pass
            try:
                listener.close()
            except OSError:  # pragma: no cover - best-effort teardown
                pass
        with self._connections_lock:
            connections = list(self._connections)
        for connection in connections:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                connection.close()
            except OSError:  # pragma: no cover - already gone
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        if self._metrics_server is not None:
            self._metrics_server.close()
            self._metrics_server = None
        self.engine.close()

    def __enter__(self) -> "CorrelationServer":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- socket plumbing -----------------------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._stopping.is_set():
            try:
                connection, _address = listener.accept()
            except OSError:
                break  # listener closed by close()
            with self._connections_lock:
                self._connections.add(connection)
            thread = threading.Thread(
                target=self._serve_connection,
                args=(connection,),
                name="tesc-serve-conn",
                daemon=True,
            )
            thread.start()

    def _serve_connection(self, connection: socket.socket) -> None:
        try:
            reader = connection.makefile("rb")
            for line in reader:
                if not line.strip():
                    continue
                rule = faults.inject(faults.SOCKET_RECV)
                if rule is not None and rule.action == "drop":
                    # Connection dies before the request is processed.
                    break
                response = self._handle_line(line)
                method = response.pop("_method", None)
                rule = faults.inject(faults.SOCKET_SEND, method=method)
                if rule is not None and rule.action == "drop":
                    # Connection dies after processing but before the
                    # response is written — the case rid-dedup exists for.
                    break
                try:
                    connection.sendall(encode(response))
                except OSError:
                    break  # client went away mid-response
                if response.pop("_shutdown", False):
                    # Shutdown acknowledged; tear the server down from a
                    # helper thread so this connection can finish cleanly.
                    threading.Thread(target=self.close, daemon=True).start()
                    break
        except OSError:  # pragma: no cover - connection reset races
            pass
        finally:
            with self._connections_lock:
                self._connections.discard(connection)
            try:
                connection.close()
            except OSError:  # pragma: no cover - already gone
                pass

    # -- dispatch ------------------------------------------------------------

    def _handle_line(self, line: bytes) -> Dict[str, Any]:
        request_id = None
        method: Optional[str] = None
        try:
            request = decode_line(line)
            request_id = request.get("id")
            method = request.get("method")
            params = request.get("params") or {}
            if not isinstance(method, str):
                raise BadRequestError("request must carry a string 'method'")
            if not isinstance(params, dict):
                raise BadRequestError("request 'params' must be an object")
            rid = parse_rid(request)
            deadline = parse_deadline(request)
            deadline_at = (
                None if deadline is None else time.monotonic() + deadline
            )
            if method in _UNGATED_METHODS:
                result = self._dispatch(method, params, rid)
            else:
                # One root span per gated request: the engine's own
                # rank/topk/commit span nests under it, so the recorded tree
                # also shows time spent waiting for an admission slot.
                with trace(
                    "request", sink=self.engine._finish_trace, method=method
                ):
                    with stage("admission"):
                        slot = self.admission.admit(deadline_at=deadline_at)
                    with slot:
                        if self._throttle is not None:
                            self._throttle(method)
                        with deadlines.deadline_scope(deadline_at):
                            result = self._dispatch(method, params, rid)
            response = ok_response(request_id, result)
            if method == "shutdown":
                response["_shutdown"] = True
            response["_method"] = method
            return response
        except DeadlineExceededError as exc:
            # Cooperative cancellation fired mid-compute: retryable 408
            # (must precede the generic ReproError -> 400 mapping).
            response = error_response(request_id, RequestTimeoutError(str(exc)))
        except ServiceError as exc:
            response = error_response(request_id, exc)
        except ReproError as exc:
            # Engine-level validation errors (unknown event, bad config,
            # insufficient sample in "raise" mode) are the client's fault.
            response = error_response(request_id, BadRequestError(str(exc)))
        except Exception as exc:  # noqa: BLE001 - server must answer
            response = error_response(request_id, exc)
        response["_method"] = method
        return response

    def _dispatch(self, method: str, params: Dict[str, Any],
                  rid: Optional[str] = None) -> Dict[str, Any]:
        if method == "ping":
            return {"pong": True}
        if method == "status":
            status = self.engine.describe()
            status["admission"] = {
                "running": self.admission.running,
                "waiting": self.admission.waiting,
                "max_concurrency": self.admission.max_concurrency,
                "max_queue": self.admission.max_queue,
                "admitted": self.admission.stats.admitted,
                "rejected": self.admission.stats.rejected,
                "timed_out": self.admission.stats.timed_out,
            }
            return status
        if method == "metrics":
            traces = int(params.get("traces", 0) or 0)
            return {
                "metrics": self.engine.metrics.snapshot(),
                "exposition": self.engine.metrics.exposition(),
                "traces": (
                    self.engine.trace_buffer.snapshot(limit=traces)
                    if traces > 0 else []
                ),
            }
        if method == "shutdown":
            return {"stopping": True}
        if method == "checkpoint":
            return self.engine.checkpoint(force=bool(params.get("force")))
        if method == "rank":
            top_k, sort_by = parse_sort_and_k(params)
            if top_k is None:
                top_k = self.default_top_k
            return self.engine.rank(
                pairs=parse_pairs(params.get("pairs")),
                top_k=top_k,
                sort_by=sort_by,
                config_overrides=parse_config_overrides(params.get("config")),
                on_insufficient=params.get("on_insufficient", "keep"),
                at_epoch=parse_at_epoch(params),
            )
        if method == "topk":
            raw_k = params.get("k", self.default_top_k)
            if raw_k is None:
                raise BadRequestError("topk requires an integer 'k'")
            try:
                k = int(raw_k)
            except (TypeError, ValueError) as exc:
                raise BadRequestError(
                    f"topk 'k' must be an integer, got {raw_k!r}"
                ) from exc
            _top_k, sort_by = parse_sort_and_k(params)
            return self.engine.topk(
                k,
                pairs=parse_pairs(params.get("pairs")),
                sort_by=sort_by,
                config_overrides=parse_config_overrides(params.get("config")),
                on_insufficient=params.get("on_insufficient", "keep"),
                at_epoch=parse_at_epoch(params),
            )
        if method == "stream":
            deltas = params.get("deltas")
            if not isinstance(deltas, list):
                raise BadRequestError(
                    "stream requires 'deltas': a list of delta records"
                )
            return self.engine.commit(deltas, rid=rid)
        raise BadRequestError(f"unknown method {method!r}")
