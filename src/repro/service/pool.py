"""The process-wide persistent worker pool.

BENCH_pr5 showed the fork-per-call pools regressing every parallel path
below serial speed: after the O(n log n) kernels a 50-pair ranking takes
~40ms, so a ~60ms pool spin-up per call can never pay for itself.  This
module replaces them with one :class:`PersistentWorkerPool` per process —
spawned on first use, reused by every parallel call of every engine, and
surviving graph mutations because workers hold no call state beyond the
bounded shared-memory caches of :mod:`repro.service.shm`.

Two task families run on the pool:

* :func:`_density_columns_task` — one contiguous *column* shard of the
  density pass.  :meth:`~repro.graph.traversal.BFSEngine.grouped_marked_counts`
  is per-reference-node independent, so splitting the sample across workers
  duplicates no traversal work and reassembling the columns is exact: the
  parallel density matrix is bit-identical to a one-shot serial pass.
  Results are written straight into parent-created shared blocks.
* :func:`_estimate_shard_task` — one round-robin *pair* shard of the
  estimate pass, reading the density matrix from shared memory and running
  :func:`~repro.core.batch.estimate_pair_list` exactly as the serial engine
  does.

A worker killed mid-task breaks the executor; :meth:`run_tasks` then rebuilds
the pool once and resubmits the whole task batch, so in-flight requests
complete instead of wedging.  A second consecutive break surfaces as
:class:`WorkerCrashedError` — a clean error, with the pool rebuilt and ready
for the next caller.

Supervision (PR 9): the pool accepts a bounded *respawn budget* so a
crash-looping workload cannot fork-bomb the host, exposes a :meth:`probe`
health check, and this module provides the :class:`CircuitBreaker` +
:class:`PoolSupervisor` pair the engine uses to trip into bit-identical
serial fallback when the pool keeps dying.  The
:data:`~repro.service.faults.WORKER_DISPATCH` fault seam fires once per
submitted task, so chaos plans like "kill worker 2 on task 7" replay
deterministically.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.density import DensityMatrix, densities_from_counts
from repro.obs.trace import attach_remote, propagation, remote_record
from repro.service import faults
from repro.service.shm import (
    ArrayRef,
    DatasetRef,
    WriteSlot,
    alloc_array,
    materialise_dataset,
    publish_array,
    publish_dataset,
    read_array,
    release_ref,
)


class WorkerCrashedError(RuntimeError):
    """A pool worker died repeatedly while running a task batch."""


@dataclass(frozen=True)
class MatrixRef:
    """Picklable handle to a density matrix published in shared memory."""

    densities: ArrayRef
    counts: ArrayRef
    sizes: ArrayRef
    nodes: ArrayRef
    level: int


# -- worker-side task entry points -------------------------------------------


def _density_columns_task(
    dataset_ref: DatasetRef,
    events: Tuple[str, ...],
    sample_ref: ArrayRef,
    start: int,
    stop: int,
    level: int,
    counts_ref: ArrayRef,
    sizes_ref: ArrayRef,
    span_ctx: Optional[Dict[str, str]] = None,
) -> Tuple[int, Optional[Dict[str, object]]]:
    """Compute density counts for reference-node columns ``[start, stop)``.

    The shard's counts/vicinity-sizes land directly in the parent-created
    shared blocks; the future carries back only the BFS-call count and —
    when the parent request is traced — a self-measured remote span record
    so the shard's wall time is attributed to the dispatching request.
    """
    t0 = time.perf_counter()
    attributed, engine = materialise_dataset(dataset_ref)
    indicators = attributed.indicator_matrix(list(events))
    nodes = read_array(sample_ref)[start:stop]
    calls_before = engine.bfs_calls
    counts, sizes = engine.grouped_marked_counts(nodes, level, indicators)
    with WriteSlot(counts_ref) as counts_slot, WriteSlot(sizes_ref) as sizes_slot:
        counts_slot.array[:, start:stop] = counts
        sizes_slot.array[start:stop] = sizes
    bfs_calls = engine.bfs_calls - calls_before
    record = remote_record(
        "worker:density_shard", time.perf_counter() - t0, span_ctx,
        columns=int(stop - start), bfs_calls=int(bfs_calls),
    )
    return bfs_calls, record


def _estimate_shard_task(
    matrix_ref: MatrixRef,
    row_of: Dict[str, int],
    shard: List[Tuple[str, str]],
    config_kwargs: Dict[str, object],
    on_insufficient: str,
    span_ctx: Optional[Dict[str, str]] = None,
):
    """Estimate one pair shard against a shared-memory density matrix.

    Runs the plain restricted-vector path (``batcher=None``), which is
    numerically identical to the serial engine's shared-rank-vector path
    (asserted in the estimator tests) and perfectly partitionable: total
    CPU across shards equals the serial estimate cost.  Returns the
    shard's ranked pairs plus an optional remote span record (see
    :func:`_density_columns_task`).
    """
    from repro.core.batch import estimate_pair_list
    from repro.core.config import TescConfig

    t0 = time.perf_counter()
    matrix = DensityMatrix(
        reference_nodes=read_array(matrix_ref.nodes),
        densities=read_array(matrix_ref.densities),
        counts=read_array(matrix_ref.counts),
        vicinity_sizes=read_array(matrix_ref.sizes),
        level=matrix_ref.level,
    )
    cfg = TescConfig(**config_kwargs)
    results = estimate_pair_list(shard, row_of, matrix, None, cfg, on_insufficient)
    record = remote_record(
        "worker:estimate_shard", time.perf_counter() - t0, span_ctx,
        pairs=len(shard),
    )
    return results, record


def _probe_task() -> int:
    """Health-probe entry point: prove a worker can run code at all."""
    return os.getpid()


# -- the pool -----------------------------------------------------------------


@dataclass
class PoolStats:
    """Lifetime counters of one :class:`PersistentWorkerPool`."""

    pools_spawned: int = 0
    tasks_dispatched: int = 0
    batches_dispatched: int = 0
    crashes_recovered: int = 0
    respawns_denied: int = 0


@dataclass(frozen=True)
class PoolHealth:
    """One :meth:`PersistentWorkerPool.probe` result."""

    ok: bool
    pids: Tuple[int, ...] = ()
    error: str = ""


class PersistentWorkerPool:
    """A grow-only, crash-recovering process pool shared by all engines.

    The pool is spawned once (first :meth:`ensure`/:meth:`run_tasks`) and
    reused for every subsequent task batch; growing the worker count
    re-forks, shrinking never does (idle workers cost nothing and keep their
    warm dataset caches).  Thread-safe: concurrent server requests submit
    through the same executor, and crash recovery is serialised through a
    generation counter so one rebuild serves every thread that saw the
    break.
    """

    def __init__(self, mp_context: Optional[str] = None,
                 respawn_budget: Optional[int] = None) -> None:
        self._mp_context = mp_context
        self._executor: Optional[ProcessPoolExecutor] = None
        self._workers = 0
        self._generation = 0
        self._lock = threading.Lock()
        self._respawns_left = respawn_budget
        self._budget_exhausted = False
        self.stats = PoolStats()

    # -- lifecycle ----------------------------------------------------------

    def _context(self):
        method = self._mp_context
        if method is None:
            available = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in available else None
        return multiprocessing.get_context(method)

    def _spawn_locked(self, workers: int) -> None:
        self._executor = ProcessPoolExecutor(
            max_workers=workers, mp_context=self._context()
        )
        self._workers = workers
        self._generation += 1
        self.stats.pools_spawned += 1

    def ensure(self, workers: int) -> None:
        """Make sure the pool exists with at least ``workers`` processes."""
        workers = max(1, int(workers))
        with self._lock:
            if self._executor is not None and self._workers >= workers:
                return
            if self._executor is not None:
                self._executor.shutdown(wait=False, cancel_futures=True)
            self._spawn_locked(workers)

    def _acquire(self, workers: int) -> Tuple[ProcessPoolExecutor, int]:
        with self._lock:
            if self._budget_exhausted:
                raise WorkerCrashedError(
                    "worker pool respawn budget exhausted; refusing to "
                    "respawn (set_respawn_budget resets the allowance)"
                )
            if self._executor is None or self._workers < workers:
                if self._executor is not None:
                    self._executor.shutdown(wait=False, cancel_futures=True)
                self._spawn_locked(max(1, int(workers)))
            return self._executor, self._generation

    def _recover(self, seen_generation: int) -> None:
        """Respawn after a broken pool, once per generation across threads."""
        with self._lock:
            if self._generation != seen_generation:
                return  # another thread already rebuilt
            workers = self._workers
            if self._executor is not None:
                self._executor.shutdown(wait=False, cancel_futures=True)
            if self._respawns_left is not None and self._respawns_left <= 0:
                # Crash-looping workload: stop forking replacements.  The
                # pool stays down until the budget is reset, and callers see
                # WorkerCrashedError immediately (the breaker's cue to go
                # serial for good).
                self._executor = None
                self._workers = 0
                self._budget_exhausted = True
                self.stats.respawns_denied += 1
                return
            if self._respawns_left is not None:
                self._respawns_left -= 1
            self._spawn_locked(workers)
            self.stats.crashes_recovered += 1

    def set_respawn_budget(self, budget: Optional[int]) -> None:
        """Reset the crash-respawn allowance (``None`` = unlimited)."""
        with self._lock:
            self._respawns_left = budget
            self._budget_exhausted = False

    @property
    def respawns_left(self) -> Optional[int]:
        """Remaining crash-respawn allowance (``None`` = unlimited)."""
        with self._lock:
            return self._respawns_left

    def shutdown(self) -> None:
        """Tear the pool down (it respawns lazily on the next task batch)."""
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True, cancel_futures=True)
                self._executor = None
                self._workers = 0

    @property
    def workers(self) -> int:
        """Current worker-process count (0 while not spawned)."""
        return self._workers

    @property
    def running(self) -> bool:
        return self._executor is not None

    # -- task dispatch ------------------------------------------------------

    def run_tasks(self, fn, task_args: Sequence[tuple], workers: Optional[int] = None):
        """Run ``fn(*args)`` for every args tuple, preserving input order.

        A broken pool (worker killed, e.g. OOM or a crash) is rebuilt and
        the *whole batch* resubmitted once — cheap, because task inputs live
        in shared memory — so in-flight requests survive a single worker
        death.  Repeated breaks raise :class:`WorkerCrashedError`, leaving a
        fresh pool behind for subsequent callers.
        """
        if not task_args:
            return []
        needed = workers if workers is not None else len(task_args)
        task_name = getattr(fn, "__name__", str(fn))
        for attempt in range(2):
            executor, generation = self._acquire(needed)
            try:
                futures = []
                for args in task_args:
                    rule = faults.inject(faults.WORKER_DISPATCH, task=task_name)
                    if rule is not None and rule.action == "kill_worker":
                        self._kill_worker(executor, rule.worker)
                    futures.append(executor.submit(fn, *args))
                results = [future.result() for future in futures]
            except BrokenProcessPool:
                self._recover(generation)
                if attempt == 0:
                    continue
                raise WorkerCrashedError(
                    "worker pool broke twice while running "
                    f"{getattr(fn, '__name__', fn)!r}; giving up on this batch"
                ) from None
            self.stats.batches_dispatched += 1
            self.stats.tasks_dispatched += len(task_args)
            return results
        raise AssertionError("unreachable")  # pragma: no cover

    @staticmethod
    def _kill_worker(executor: ProcessPoolExecutor, index: int) -> bool:
        """SIGKILL one live worker (chaos only; selected by sorted-pid index)."""
        processes = getattr(executor, "_processes", None) or {}
        pids = sorted(processes.keys())
        if not pids:
            return False
        try:
            os.kill(pids[index % len(pids)], signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            return False
        return True

    # -- health -------------------------------------------------------------

    def probe(self) -> PoolHealth:
        """Round-trip a trivial task through the pool.

        ``ok`` means the pool can currently execute work; a probe of a
        downed pool (respawn budget exhausted, or workers dying faster than
        the single transparent respawn) reports the failure instead of
        raising.
        """
        try:
            pids = self.run_tasks(_probe_task, [()], workers=self._workers or 1)
        except WorkerCrashedError as exc:
            return PoolHealth(ok=False, error=str(exc))
        return PoolHealth(ok=True, pids=tuple(int(pid) for pid in pids))


# -- the process-wide singleton ----------------------------------------------

_GLOBAL_POOL: Optional[PersistentWorkerPool] = None
_GLOBAL_POOL_LOCK = threading.Lock()


def global_pool() -> PersistentWorkerPool:
    """The process-wide pool every engine shares (created on first use)."""
    global _GLOBAL_POOL
    with _GLOBAL_POOL_LOCK:
        if _GLOBAL_POOL is None:
            _GLOBAL_POOL = PersistentWorkerPool()
        return _GLOBAL_POOL


def shutdown_global_pool() -> None:
    """Shut the process-wide pool down (it respawns on the next use).

    Used by tests and by the fork-cold leg of the warm-vs-fork benchmark;
    ordinary callers never need it — the pool is meant to live as long as
    the process.
    """
    global _GLOBAL_POOL
    with _GLOBAL_POOL_LOCK:
        pool = _GLOBAL_POOL
    if pool is not None:
        pool.shutdown()


# -- supervision ---------------------------------------------------------------


class CircuitBreaker:
    """A classic closed → open → half-open breaker guarding the pool path.

    ``record_failure`` counts consecutive failures; at ``failure_threshold``
    the breaker *opens* and :meth:`allow` answers ``False`` (the engine runs
    the bit-identical serial path instead of touching the pool).  After
    ``cooldown_seconds`` the next :meth:`allow` admits exactly one trial
    (*half-open*); its success closes the breaker, its failure re-opens it
    for another cooldown.  ``clock`` is injectable so chaos tests step time
    deterministically.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, failure_threshold: int = 2, cooldown_seconds: float = 5.0,
                 clock=time.monotonic) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = int(failure_threshold)
        self.cooldown_seconds = float(cooldown_seconds)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._trial_in_flight = False
        self.transitions = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def open(self) -> bool:
        """Whether the protected path is currently distrusted (not closed)."""
        with self._lock:
            return self._state != self.CLOSED

    def _transition_locked(self, state: str) -> None:
        if state != self._state:
            self._state = state
            self.transitions += 1

    def allow(self) -> bool:
        """Whether the caller may take the protected (pooled) path now."""
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN:
                if self._clock() - self._opened_at < self.cooldown_seconds:
                    return False
                self._transition_locked(self.HALF_OPEN)
                self._trial_in_flight = True
                return True
            if not self._trial_in_flight:
                self._trial_in_flight = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._trial_in_flight = False
            self._transition_locked(self.CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            trial_failed = self._state == self.HALF_OPEN
            self._trial_in_flight = False
            if trial_failed or self._failures >= self.failure_threshold:
                self._transition_locked(self.OPEN)
                self._opened_at = self._clock()

    def reset(self) -> None:
        with self._lock:
            self._failures = 0
            self._trial_in_flight = False
            self._transition_locked(self.CLOSED)


class PoolSupervisor:
    """The engine's view of pool health: breaker + probe + failure ledger.

    One supervisor guards every pooled call site of one engine.  Call
    :meth:`allow` before dispatching to the pool, then exactly one of
    :meth:`record_success` / :meth:`record_failure`; once the breaker
    opens, the engine serves the serial path (bit-identical by the pool's
    own determinism contract) until a cooldown trial heals it.
    """

    def __init__(self, pool: PersistentWorkerPool,
                 breaker: Optional[CircuitBreaker] = None) -> None:
        self.pool = pool
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.failures = 0
        self.last_error = ""

    def allow(self) -> bool:
        return self.breaker.allow()

    def record_success(self) -> None:
        self.breaker.record_success()

    def record_failure(self, error: BaseException) -> None:
        self.failures += 1
        self.last_error = f"{type(error).__name__}: {error}"
        self.breaker.record_failure()

    @property
    def degraded(self) -> bool:
        """Whether new requests are currently routed to the serial path."""
        return self.breaker.open

    def probe(self) -> PoolHealth:
        """Health-check the pool without disturbing the breaker."""
        return self.pool.probe()

    def describe(self) -> Dict[str, object]:
        return {
            "breaker_state": self.breaker.state,
            "breaker_transitions": self.breaker.transitions,
            "pool_failures": self.failures,
            "last_error": self.last_error,
            "respawns_left": self.pool.respawns_left,
        }


# -- pooled high-level phases -------------------------------------------------


def pooled_density_matrix(
    pool: PersistentWorkerPool,
    attributed,
    sample_nodes: np.ndarray,
    events: Sequence[str],
    level: int,
    workers: int,
) -> Tuple[DensityMatrix, int]:
    """One density pass, column-sharded across the persistent pool.

    The parent publishes the dataset (memoised per graph version) and the
    sample nodes, allocates shared counts/sizes blocks, and hands each
    worker a contiguous slice of reference-node columns.  Because the
    grouped BFS treats reference nodes independently, the reassembled
    matrix is bit-identical to the serial engine's one-shot pass — and no
    traversal work is duplicated, so total CPU stays at serial cost plus
    ~ms of dispatch.

    Returns the matrix plus the number of worker-side BFS calls.
    """
    nodes = np.asarray(sample_nodes, dtype=np.int64)
    num_events = len(events)
    dataset_ref = publish_dataset(attributed)
    sample_ref = publish_array(nodes, "sample")
    counts_ref = alloc_array((num_events, nodes.size), np.int64, "counts")
    sizes_ref = alloc_array((nodes.size,), np.int64, "sizes")
    try:
        shards = max(1, min(int(workers), nodes.size))
        bounds = np.linspace(0, nodes.size, shards + 1, dtype=np.int64)
        span_ctx = propagation()
        tasks = [
            (
                dataset_ref, tuple(events), sample_ref,
                int(bounds[i]), int(bounds[i + 1]), int(level),
                counts_ref, sizes_ref, span_ctx,
            )
            for i in range(shards)
            if bounds[i] < bounds[i + 1]
        ]
        shard_outputs = pool.run_tasks(_density_columns_task, tasks, workers=workers)
        bfs_calls = 0
        for shard_calls, record in shard_outputs:
            bfs_calls += shard_calls
            attach_remote(record)
        counts = read_array(counts_ref)
        sizes = read_array(sizes_ref)
    finally:
        release_ref(sample_ref)
        release_ref(counts_ref)
        release_ref(sizes_ref)
    return (
        DensityMatrix(
            reference_nodes=nodes,
            densities=densities_from_counts(counts, sizes),
            counts=counts,
            vicinity_sizes=sizes,
            level=int(level),
        ),
        int(bfs_calls),
    )


def publish_matrix(matrix: DensityMatrix) -> MatrixRef:
    """Publish a density matrix's arrays to shared memory."""
    return MatrixRef(
        densities=publish_array(matrix.densities, "dens"),
        counts=publish_array(matrix.counts, "counts"),
        sizes=publish_array(matrix.vicinity_sizes, "sizes"),
        nodes=publish_array(matrix.reference_nodes, "refs"),
        level=int(matrix.level),
    )


def release_matrix(ref: MatrixRef) -> None:
    """Unlink a published density matrix."""
    for array_ref in (ref.densities, ref.counts, ref.sizes, ref.nodes):
        release_ref(array_ref)
