"""Wire protocol of the correlation service (v3).

Newline-delimited JSON over a local TCP (or Unix) socket: each request is
one line ``{"id": ..., "method": ..., "params": {...}}``, each response one
line ``{"id": ..., "proto": 2, "epoch": ..., "ok": true, "result": {...}}``
or ``{"id": ..., "proto": 2, "ok": false, "error": {"code": ..., "type":
..., "message": ...}}``.  JSON floats round-trip Python's float64 exactly
(``repr`` shortest-round-trip), which is what lets the bit-identity suites
compare service answers against in-process rankings field by field.

Methods: ``ping``, ``status``, ``metrics``, ``rank``, ``topk``, ``stream``,
``checkpoint``, ``shutdown``.  ``metrics`` is ungated (like
``ping``/``status``) and returns the server's metrics registry as a plain
snapshot dict plus its Prometheus text exposition; ``params: {"traces": N}``
additionally returns the last ``N`` request span trees from the server's
trace buffer.  ``checkpoint`` (also ungated — it runs off the commit path
against a leased snapshot) forces a durable checkpoint on a server started
with ``--store``; ``params: {"force": true}`` overrides the unchanged-epoch
skip.

Protocol v2 (the snapshot-isolation release) adds two envelope fields to
every response: ``proto``, the protocol **major version** — clients must
reject responses whose major version they do not speak — and ``epoch``, the
commit epoch the response was computed at (present on every success whose
result is epoch-bound; mirrored from the result for ``rank``/``topk``/
``stream``).  Requests may pass ``at_epoch`` in ``rank``/``topk`` params to
read a pinned historical snapshot.  v1 servers sent no ``proto`` field;
clients treat a missing ``proto`` as version 1.

Protocol v3 (the fault-tolerance release) adds two *request* envelope
fields — ``rid``, a client-generated idempotency key (the server dedups
``stream`` commits on it, so a retried commit whose first response was lost
in flight is returned from cache instead of applied twice), and
``deadline``, the client's remaining budget in seconds (relative, so clock
skew is irrelevant) propagated into admission waits and cooperative
cancellation checkpoints — and two *error*-body fields: ``retryable``
(whether an identical retry can succeed) and an optional ``retry_after``
backoff hint in seconds.  Both directions are backwards compatible: v2
servers ignore the new request fields, v2 clients ignore the new error
fields.

Error codes follow the familiar HTTP shape so backpressure is recognisable:
``400`` malformed/invalid request (never retryable), ``408`` queue-wait or
deadline timeout (retryable), ``429`` overloaded — bounded queue full
(retryable, honouring ``retry_after``), ``500`` internal failure (not
retryable), ``503`` durable log unavailable (retryable: the write-ahead
append failed *before* any state change).  The client maps each code back
onto the exception classes below.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple

#: The protocol major version this build speaks.
PROTO_VERSION = 3

#: Config fields a request may override, and the coercions applied to them.
CONFIG_FIELDS: Dict[str, type] = {
    "vicinity_level": int,
    "sample_size": int,
    "sampler": str,
    "alpha": float,
    "alternative": str,
    "batch_per_vicinity": int,
    "kendall_kernel": str,
    "kendall_crossover": int,
    "topk_initial_sample_size": int,
    "topk_growth_factor": float,
    "topk_confidence": float,
    "topk_bound": str,
    "random_state": int,
}


class ServiceError(Exception):
    """Base class of every error the service reports to a client.

    ``retryable`` is the class default for the wire field of the same name;
    :func:`raise_for_error` overrides the instance attribute from the
    response body, and attaches ``retry_after`` (seconds, or ``None``) so
    retry loops can read both off any caught :class:`ServiceError`.
    """

    code = 500
    kind = "internal"
    retryable = False
    retry_after: Optional[float] = None


class BadRequestError(ServiceError):
    """Malformed request, unknown method/event, or invalid configuration."""

    code = 400
    kind = "bad_request"


class RequestTimeoutError(ServiceError):
    """The queue wait or the request's own deadline expired."""

    code = 408
    kind = "timeout"
    retryable = True


class OverloadedError(ServiceError):
    """The server's bounded wait queue is full (back off and retry)."""

    code = 429
    kind = "overloaded"
    retryable = True


class RemoteError(ServiceError):
    """The server failed internally while handling the request."""

    code = 500
    kind = "internal"


class UnavailableError(ServiceError):
    """A dependency (the write-ahead log) failed before any state change."""

    code = 503
    kind = "unavailable"
    retryable = True


class ConnectionLostError(RemoteError):
    """Client side only: the socket died before a response arrived.

    Synthesised by :class:`~repro.service.client.CorrelationClient` (never
    sent on the wire).  Retryable — for reads trivially, for ``stream``
    because the server dedups commits on the request's ``rid``.
    """

    kind = "connection"
    retryable = True


#: code -> client-side exception class.
ERRORS_BY_CODE = {
    cls.code: cls
    for cls in (
        BadRequestError,
        RequestTimeoutError,
        OverloadedError,
        RemoteError,
        UnavailableError,
    )
}


def encode(message: Dict[str, Any]) -> bytes:
    """One protocol message as a newline-terminated JSON line."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one received line; raises :class:`BadRequestError` on garbage."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BadRequestError(f"malformed JSON line: {exc}") from exc
    if not isinstance(message, dict):
        raise BadRequestError(
            f"protocol messages must be JSON objects, got {type(message).__name__}"
        )
    return message


def error_response(request_id: Any, error: BaseException) -> Dict[str, Any]:
    """The error-response message for ``error``."""
    if isinstance(error, ServiceError):
        code, kind = error.code, error.kind
        retryable = bool(error.retryable)
        retry_after = error.retry_after
    else:
        code, kind = 500, "internal"
        retryable, retry_after = False, None
    body: Dict[str, Any] = {
        "code": code,
        "type": kind,
        "exception": type(error).__name__,
        "message": str(error),
        "retryable": retryable,
    }
    if retry_after is not None:
        body["retry_after"] = float(retry_after)
    return {
        "id": request_id,
        "proto": PROTO_VERSION,
        "ok": False,
        "error": body,
    }


def ok_response(request_id: Any, result: Dict[str, Any],
                epoch: Optional[int] = None) -> Dict[str, Any]:
    """The success-response message wrapping ``result``.

    ``epoch`` stamps the envelope; when omitted it is mirrored from
    ``result["epoch"]`` if the result carries one, so every epoch-bound
    answer advertises its snapshot at the envelope level.
    """
    if epoch is None and isinstance(result, dict):
        epoch = result.get("epoch")
    response: Dict[str, Any] = {
        "id": request_id,
        "proto": PROTO_VERSION,
        "ok": True,
        "result": result,
    }
    if epoch is not None:
        response["epoch"] = int(epoch)
    return response


def check_proto(response: Dict[str, Any]) -> int:
    """Client side: reject responses from an incompatible major version.

    A missing ``proto`` field means a v1 server — accepted, since v1's
    request/response shapes are a strict subset of v2.  Anything newer than
    this build raises :class:`RemoteError` (the safe interpretation of a
    message whose semantics we cannot know).
    """
    proto = response.get("proto", 1)
    if not isinstance(proto, int) or proto < 1:
        raise RemoteError(f"malformed protocol version {proto!r} in response")
    if proto > PROTO_VERSION:
        raise RemoteError(
            f"server speaks protocol v{proto}, this client only understands "
            f"up to v{PROTO_VERSION}; upgrade the client"
        )
    return proto


def raise_for_error(response: Dict[str, Any]) -> Dict[str, Any]:
    """Client side: unwrap a response, raising the mapped exception."""
    check_proto(response)
    if response.get("ok"):
        return response.get("result", {})
    error = response.get("error") or {}
    cls = ERRORS_BY_CODE.get(error.get("code"), RemoteError)
    exception = error.get("exception")
    message = error.get("message", "unknown server error")
    raised = cls(f"{exception}: {message}" if exception else message)
    retryable = error.get("retryable")
    if isinstance(retryable, bool):
        raised.retryable = retryable
    retry_after = error.get("retry_after")
    if isinstance(retry_after, (int, float)) and retry_after >= 0:
        raised.retry_after = float(retry_after)
    raise raised


def parse_pairs(raw: Any) -> Any:
    """Normalise a request's ``pairs`` param into a :data:`PairSpec`."""
    if raw is None or raw == "all":
        return "all"
    if not isinstance(raw, list):
        raise BadRequestError(
            f'pairs must be "all" or a list of [event_a, event_b] pairs, got {raw!r}'
        )
    pairs = []
    for entry in raw:
        if not isinstance(entry, (list, tuple)) or len(entry) != 2:
            raise BadRequestError(
                f"each pair must be a two-element list, got {entry!r}"
            )
        pairs.append((str(entry[0]), str(entry[1])))
    return pairs


def parse_config_overrides(raw: Any) -> Dict[str, Any]:
    """Validate and coerce a request's ``config`` override mapping.

    Only whitelisted :class:`~repro.core.config.TescConfig` fields pass
    (``seed`` is accepted as an alias for ``random_state``); anything else
    is a :class:`BadRequestError` — clients cannot smuggle arbitrary kwargs
    into the engine.
    """
    if raw is None:
        return {}
    if not isinstance(raw, dict):
        raise BadRequestError(f"config must be an object, got {raw!r}")
    overrides: Dict[str, Any] = {}
    for key, value in raw.items():
        field = "random_state" if key == "seed" else key
        coerce = CONFIG_FIELDS.get(field)
        if coerce is None:
            raise BadRequestError(f"unknown config field {key!r}")
        if value is None:
            overrides[field] = None
            continue
        try:
            overrides[field] = coerce(value)
        except (TypeError, ValueError) as exc:
            raise BadRequestError(
                f"config field {key!r} has invalid value {value!r}: {exc}"
            ) from exc
    return overrides


def parse_at_epoch(params: Dict[str, Any]) -> Optional[int]:
    """Extract the optional ``at_epoch`` pin from request params."""
    at_epoch = params.get("at_epoch")
    if at_epoch is None:
        return None
    try:
        return int(at_epoch)
    except (TypeError, ValueError) as exc:
        raise BadRequestError(
            f"at_epoch must be an integer, got {at_epoch!r}"
        ) from exc


def parse_sort_and_k(params: Dict[str, Any]) -> Tuple[Optional[int], str]:
    """Extract ``(top_k, sort_by)`` from request params."""
    top_k = params.get("top_k")
    if top_k is not None:
        try:
            top_k = int(top_k)
        except (TypeError, ValueError) as exc:
            raise BadRequestError(f"top_k must be an integer, got {top_k!r}") from exc
    sort_by = params.get("sort_by", "score")
    if not isinstance(sort_by, str):
        raise BadRequestError(f"sort_by must be a string, got {sort_by!r}")
    return top_k, sort_by


def parse_deadline(request: Dict[str, Any]) -> Optional[float]:
    """Extract the optional relative ``deadline`` (seconds) from a request.

    The wire value is *relative* remaining budget, not a wall-clock
    instant, so client/server clock skew cannot shrink or inflate it; the
    server converts it to an absolute monotonic deadline on receipt.
    """
    deadline = request.get("deadline")
    if deadline is None:
        return None
    try:
        deadline = float(deadline)
    except (TypeError, ValueError) as exc:
        raise BadRequestError(
            f"deadline must be a number of seconds, got {deadline!r}"
        ) from exc
    if deadline != deadline or deadline <= 0:  # NaN or non-positive
        raise BadRequestError(
            f"deadline must be a positive number of seconds, got {deadline!r}"
        )
    return deadline


def parse_rid(request: Dict[str, Any]) -> Optional[str]:
    """Extract the optional idempotency key ``rid`` from a request."""
    rid = request.get("rid")
    if rid is None:
        return None
    if not isinstance(rid, str) or not rid or len(rid) > 200:
        raise BadRequestError(
            f"rid must be a non-empty string of at most 200 characters, got {rid!r}"
        )
    return rid
