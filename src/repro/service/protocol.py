"""Wire protocol of the correlation service (v2).

Newline-delimited JSON over a local TCP (or Unix) socket: each request is
one line ``{"id": ..., "method": ..., "params": {...}}``, each response one
line ``{"id": ..., "proto": 2, "epoch": ..., "ok": true, "result": {...}}``
or ``{"id": ..., "proto": 2, "ok": false, "error": {"code": ..., "type":
..., "message": ...}}``.  JSON floats round-trip Python's float64 exactly
(``repr`` shortest-round-trip), which is what lets the bit-identity suites
compare service answers against in-process rankings field by field.

Methods: ``ping``, ``status``, ``metrics``, ``rank``, ``topk``, ``stream``,
``shutdown``.  ``metrics`` is ungated (like ``ping``/``status``) and returns
the server's metrics registry as a plain snapshot dict plus its Prometheus
text exposition; ``params: {"traces": N}`` additionally returns the last
``N`` request span trees from the server's trace buffer.

Protocol v2 (the snapshot-isolation release) adds two envelope fields to
every response: ``proto``, the protocol **major version** — clients must
reject responses whose major version they do not speak — and ``epoch``, the
commit epoch the response was computed at (present on every success whose
result is epoch-bound; mirrored from the result for ``rank``/``topk``/
``stream``).  Requests may pass ``at_epoch`` in ``rank``/``topk`` params to
read a pinned historical snapshot.  v1 servers sent no ``proto`` field;
clients treat a missing ``proto`` as version 1.

Error codes follow the familiar HTTP shape so backpressure is recognisable:
``400`` malformed/invalid request, ``408`` queue-wait timeout, ``429``
overloaded (bounded queue full), ``500`` internal failure.  The client maps
each code back onto the exception classes below.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple

#: The protocol major version this build speaks.
PROTO_VERSION = 2

#: Config fields a request may override, and the coercions applied to them.
CONFIG_FIELDS: Dict[str, type] = {
    "vicinity_level": int,
    "sample_size": int,
    "sampler": str,
    "alpha": float,
    "alternative": str,
    "batch_per_vicinity": int,
    "kendall_kernel": str,
    "kendall_crossover": int,
    "topk_initial_sample_size": int,
    "topk_growth_factor": float,
    "topk_confidence": float,
    "topk_bound": str,
    "random_state": int,
}


class ServiceError(Exception):
    """Base class of every error the service reports to a client."""

    code = 500
    kind = "internal"


class BadRequestError(ServiceError):
    """Malformed request, unknown method/event, or invalid configuration."""

    code = 400
    kind = "bad_request"


class RequestTimeoutError(ServiceError):
    """The request waited longer than the queue timeout for a slot."""

    code = 408
    kind = "timeout"


class OverloadedError(ServiceError):
    """The server's bounded wait queue is full (back off and retry)."""

    code = 429
    kind = "overloaded"


class RemoteError(ServiceError):
    """The server failed internally while handling the request."""

    code = 500
    kind = "internal"


#: code -> client-side exception class.
ERRORS_BY_CODE = {
    cls.code: cls
    for cls in (BadRequestError, RequestTimeoutError, OverloadedError, RemoteError)
}


def encode(message: Dict[str, Any]) -> bytes:
    """One protocol message as a newline-terminated JSON line."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one received line; raises :class:`BadRequestError` on garbage."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BadRequestError(f"malformed JSON line: {exc}") from exc
    if not isinstance(message, dict):
        raise BadRequestError(
            f"protocol messages must be JSON objects, got {type(message).__name__}"
        )
    return message


def error_response(request_id: Any, error: BaseException) -> Dict[str, Any]:
    """The error-response message for ``error``."""
    if isinstance(error, ServiceError):
        code, kind = error.code, error.kind
    else:
        code, kind = 500, "internal"
    return {
        "id": request_id,
        "proto": PROTO_VERSION,
        "ok": False,
        "error": {
            "code": code,
            "type": kind,
            "exception": type(error).__name__,
            "message": str(error),
        },
    }


def ok_response(request_id: Any, result: Dict[str, Any],
                epoch: Optional[int] = None) -> Dict[str, Any]:
    """The success-response message wrapping ``result``.

    ``epoch`` stamps the envelope; when omitted it is mirrored from
    ``result["epoch"]`` if the result carries one, so every epoch-bound
    answer advertises its snapshot at the envelope level.
    """
    if epoch is None and isinstance(result, dict):
        epoch = result.get("epoch")
    response: Dict[str, Any] = {
        "id": request_id,
        "proto": PROTO_VERSION,
        "ok": True,
        "result": result,
    }
    if epoch is not None:
        response["epoch"] = int(epoch)
    return response


def check_proto(response: Dict[str, Any]) -> int:
    """Client side: reject responses from an incompatible major version.

    A missing ``proto`` field means a v1 server — accepted, since v1's
    request/response shapes are a strict subset of v2.  Anything newer than
    this build raises :class:`RemoteError` (the safe interpretation of a
    message whose semantics we cannot know).
    """
    proto = response.get("proto", 1)
    if not isinstance(proto, int) or proto < 1:
        raise RemoteError(f"malformed protocol version {proto!r} in response")
    if proto > PROTO_VERSION:
        raise RemoteError(
            f"server speaks protocol v{proto}, this client only understands "
            f"up to v{PROTO_VERSION}; upgrade the client"
        )
    return proto


def raise_for_error(response: Dict[str, Any]) -> Dict[str, Any]:
    """Client side: unwrap a response, raising the mapped exception."""
    check_proto(response)
    if response.get("ok"):
        return response.get("result", {})
    error = response.get("error") or {}
    cls = ERRORS_BY_CODE.get(error.get("code"), RemoteError)
    exception = error.get("exception")
    message = error.get("message", "unknown server error")
    raise cls(f"{exception}: {message}" if exception else message)


def parse_pairs(raw: Any) -> Any:
    """Normalise a request's ``pairs`` param into a :data:`PairSpec`."""
    if raw is None or raw == "all":
        return "all"
    if not isinstance(raw, list):
        raise BadRequestError(
            f'pairs must be "all" or a list of [event_a, event_b] pairs, got {raw!r}'
        )
    pairs = []
    for entry in raw:
        if not isinstance(entry, (list, tuple)) or len(entry) != 2:
            raise BadRequestError(
                f"each pair must be a two-element list, got {entry!r}"
            )
        pairs.append((str(entry[0]), str(entry[1])))
    return pairs


def parse_config_overrides(raw: Any) -> Dict[str, Any]:
    """Validate and coerce a request's ``config`` override mapping.

    Only whitelisted :class:`~repro.core.config.TescConfig` fields pass
    (``seed`` is accepted as an alias for ``random_state``); anything else
    is a :class:`BadRequestError` — clients cannot smuggle arbitrary kwargs
    into the engine.
    """
    if raw is None:
        return {}
    if not isinstance(raw, dict):
        raise BadRequestError(f"config must be an object, got {raw!r}")
    overrides: Dict[str, Any] = {}
    for key, value in raw.items():
        field = "random_state" if key == "seed" else key
        coerce = CONFIG_FIELDS.get(field)
        if coerce is None:
            raise BadRequestError(f"unknown config field {key!r}")
        if value is None:
            overrides[field] = None
            continue
        try:
            overrides[field] = coerce(value)
        except (TypeError, ValueError) as exc:
            raise BadRequestError(
                f"config field {key!r} has invalid value {value!r}: {exc}"
            ) from exc
    return overrides


def parse_at_epoch(params: Dict[str, Any]) -> Optional[int]:
    """Extract the optional ``at_epoch`` pin from request params."""
    at_epoch = params.get("at_epoch")
    if at_epoch is None:
        return None
    try:
        return int(at_epoch)
    except (TypeError, ValueError) as exc:
        raise BadRequestError(
            f"at_epoch must be an integer, got {at_epoch!r}"
        ) from exc


def parse_sort_and_k(params: Dict[str, Any]) -> Tuple[Optional[int], str]:
    """Extract ``(top_k, sort_by)`` from request params."""
    top_k = params.get("top_k")
    if top_k is not None:
        try:
            top_k = int(top_k)
        except (TypeError, ValueError) as exc:
            raise BadRequestError(f"top_k must be an integer, got {top_k!r}") from exc
    sort_by = params.get("sort_by", "score")
    if not isinstance(sort_by, str):
        raise BadRequestError(f"sort_by must be a string, got {sort_by!r}")
    return top_k, sort_by
