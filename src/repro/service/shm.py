"""Shared-memory publication of arrays, datasets and density matrices.

The persistent pool's workers live across many requests, so per-call state
must cross the process boundary without pickling whole graphs.  Everything
here moves through :mod:`multiprocessing.shared_memory` blocks:

* :func:`publish_array` copies one ndarray into a fresh segment and returns a
  picklable :class:`ArrayRef` (name + shape + dtype) that any process can
  attach;
* :func:`publish_dataset` publishes an attributed graph (CSR arrays plus the
  event layer) once per ``(structure_version, events.version)`` and memoises
  the handle on the graph object, so repeated parallel calls — and fresh
  engines over the same graph — reuse the same blocks;
* workers rebuild graphs/matrices from refs through small bounded caches, so
  a warm pool touches shared memory only on version changes.

Segment names all start with :data:`SHM_PREFIX`, which is what the lifecycle
tests grep ``/dev/shm`` for when asserting nothing leaked.

CPython 3.11 quirk: ``SharedMemory(name=..., create=False)`` *registers* the
segment with the resource tracker even though the attaching process does not
own it (fixed by the ``track=`` parameter only in 3.13).  Forked workers
share the parent's tracker process, whose cache is a set — so an attach-side
register collapses into the parent's own registration, and *unregistering*
after attach (the obvious workaround) would delete the parent's entry and
make the eventual unlink blow up inside the tracker.  :func:`attach`
therefore suppresses registration during the attach itself; only the
creating process (via :class:`ShmRegistry`) registers and unlinks.
"""

from __future__ import annotations

import atexit
import os
import threading
import uuid
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

from repro.service import faults

#: Prefix of every segment this package creates (lifecycle tests key on it).
SHM_PREFIX = "tesc_"


def _new_segment_name(tag: str) -> str:
    return f"{SHM_PREFIX}{tag}_{uuid.uuid4().hex[:12]}"


@dataclass(frozen=True)
class ArrayRef:
    """A picklable handle to one ndarray living in a shared-memory segment."""

    name: str
    shape: Tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape, dtype=np.int64)))


#: Serialises the brief windows in which attach() disables the tracker's
#: register hook, so a concurrent create on another thread cannot slip its
#: (legitimate) registration into the gap.
_TRACKER_LOCK = threading.Lock()


def attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting its ownership."""
    with _TRACKER_LOCK:
        # Suppress the unconditional 3.11 attach-side registration (see
        # module docstring); 3.13+ would spell this ``track=False``.
        original_register = resource_tracker.register
        resource_tracker.register = lambda *_args, **_kwargs: None
        try:
            return shared_memory.SharedMemory(name=name, create=False)
        finally:
            resource_tracker.register = original_register


def read_array(ref: ArrayRef) -> np.ndarray:
    """Attach, copy out the array, and detach immediately.

    The copy decouples the returned array's lifetime from the segment's, so
    callers never hold views into memory another process may unlink.
    """
    segment = attach(ref.name)
    try:
        view = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=segment.buf)
        return np.array(view, copy=True)
    finally:
        segment.close()


class WriteSlot:
    """A writable view into a published array, closed explicitly.

    Used by density workers to deposit their column shard directly into the
    parent-created counts/sizes blocks — results come back through shared
    memory, never through pickles.
    """

    def __init__(self, ref: ArrayRef) -> None:
        self._segment = attach(ref.name)
        self.array = np.ndarray(
            ref.shape, dtype=np.dtype(ref.dtype), buffer=self._segment.buf
        )

    def close(self) -> None:
        # Drop the view before closing: a live exported buffer would make
        # SharedMemory.close raise BufferError.
        self.array = None
        self._segment.close()

    def __enter__(self) -> "WriteSlot":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class ShmRegistry:
    """Owner-side ledger of created segments.

    Every segment the process creates is recorded here; :meth:`release`
    unlinks one, :meth:`unlink_all` sweeps everything (wired to
    :mod:`atexit`, and called explicitly by server shutdown and the engines'
    ``close``).  Only the creating process ever unlinks — attachers go
    through :func:`attach`, which never takes ownership.
    """

    def __init__(self) -> None:
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._pid = os.getpid()

    def create(self, tag: str, nbytes: int) -> shared_memory.SharedMemory:
        rule = faults.inject(faults.SHM_ALLOC, tag=tag)
        if rule is not None and rule.action == "error":
            # The real failure mode here is ENOSPC on /dev/shm, i.e. OSError.
            raise OSError(rule.message)
        with _TRACKER_LOCK:  # keep our registration out of attach()'s window
            segment = shared_memory.SharedMemory(
                name=_new_segment_name(tag), create=True, size=max(int(nbytes), 1)
            )
        self._segments[segment.name] = segment
        return segment

    def publish_array(self, array: np.ndarray, tag: str = "arr") -> ArrayRef:
        """Copy ``array`` into a fresh segment and return its handle."""
        array = np.ascontiguousarray(array)
        segment = self.create(tag, array.nbytes)
        if array.nbytes:
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
            view[...] = array
            del view
        return ArrayRef(name=segment.name, shape=tuple(array.shape), dtype=array.dtype.str)

    def alloc_array(self, shape: Tuple[int, ...], dtype, tag: str = "buf") -> ArrayRef:
        """Create a zero-filled shared array for workers to write into."""
        dtype = np.dtype(dtype)
        nbytes = int(dtype.itemsize * np.prod(shape, dtype=np.int64))
        segment = self.create(tag, nbytes)
        return ArrayRef(name=segment.name, shape=tuple(int(s) for s in shape),
                        dtype=dtype.str)

    def release(self, name: str) -> None:
        """Unlink one owned segment (idempotent).

        close/unlink run under ``_TRACKER_LOCK``: the resource tracker's
        registration bookkeeping is process-global, and an unlink racing an
        :func:`attach` (or a checkpoint-triggered GC running this from
        atexit during interpreter shutdown) in another thread could
        otherwise interleave with the tracker swap window.
        """
        segment = self._segments.pop(name, None)
        if segment is None:
            return
        with _TRACKER_LOCK:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - caller kept a live view
                pass
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def release_ref(self, ref: Optional[ArrayRef]) -> None:
        if ref is not None:
            self.release(ref.name)

    def unlink_all(self) -> None:
        """Unlink every owned segment (safe to call repeatedly)."""
        if os.getpid() != self._pid:
            # A forked child inherited this registry; the parent still owns
            # the segments, so the child must not unlink them.
            self._segments.clear()
            return
        for name in list(self._segments):
            self.release(name)

    @property
    def num_owned(self) -> int:
        return len(self._segments)


#: The process-wide registry used by the engines and the server.
GLOBAL_REGISTRY = ShmRegistry()
atexit.register(GLOBAL_REGISTRY.unlink_all)


def publish_array(array: np.ndarray, tag: str = "arr") -> ArrayRef:
    """Publish one array through the process-wide registry."""
    return GLOBAL_REGISTRY.publish_array(array, tag)


def alloc_array(shape: Tuple[int, ...], dtype, tag: str = "buf") -> ArrayRef:
    """Allocate a zero-filled shared array through the process-wide registry."""
    return GLOBAL_REGISTRY.alloc_array(shape, dtype, tag)


def release_ref(ref: Optional[ArrayRef]) -> None:
    """Unlink one array published through the process-wide registry."""
    GLOBAL_REGISTRY.release_ref(ref)


# -- dataset publication ------------------------------------------------------


@dataclass(frozen=True)
class DatasetRef:
    """Picklable handle to one published attributed graph.

    ``token`` identifies the publication (fresh per graph version), which is
    what worker-side caches key on; the array refs carry the CSR adjacency
    and the event layer as ``(concatenated nodes, offsets, names)``.
    """

    token: str
    indptr: ArrayRef
    indices: ArrayRef
    event_nodes: ArrayRef
    event_offsets: ArrayRef
    event_names: Tuple[str, ...]


#: Attribute under which a graph's live publication is memoised.
_PUBLICATION_ATTR = "_service_shm_publication"


def publish_dataset(attributed, registry: Optional[ShmRegistry] = None) -> DatasetRef:
    """Publish ``attributed`` to shared memory, memoised per version.

    The handle is cached on the graph object keyed by
    ``(structure_version, events.version)``; commits that change either
    version republish (and unlink the stale blocks), while repeated parallel
    calls — even from freshly constructed engines — reuse the same segments.
    """
    registry = registry if registry is not None else GLOBAL_REGISTRY
    version = (
        int(getattr(attributed, "structure_version", 0)),
        int(attributed.events.version),
    )
    cached = getattr(attributed, _PUBLICATION_ATTR, None)
    if cached is not None and cached[0] == version:
        return cached[1]
    if cached is not None:
        unpublish_dataset(attributed, registry)
    csr = attributed.csr
    names = tuple(attributed.event_names())
    arrays = [attributed.event_nodes(name) for name in names]
    offsets = np.zeros(len(arrays) + 1, dtype=np.int64)
    if arrays:
        offsets[1:] = np.cumsum([array.size for array in arrays])
        nodes = np.concatenate(arrays) if offsets[-1] else np.empty(0, np.int64)
    else:
        nodes = np.empty(0, np.int64)
    ref = DatasetRef(
        token=uuid.uuid4().hex,
        indptr=registry.publish_array(np.asarray(csr.indptr), "indptr"),
        indices=registry.publish_array(np.asarray(csr.indices), "indices"),
        event_nodes=registry.publish_array(nodes.astype(np.int64, copy=False), "evnodes"),
        event_offsets=registry.publish_array(offsets, "evoffs"),
        event_names=names,
    )
    setattr(attributed, _PUBLICATION_ATTR, (version, ref))
    return ref


def unpublish_dataset(attributed, registry: Optional[ShmRegistry] = None) -> None:
    """Unlink a graph's published blocks (no-op when never published)."""
    registry = registry if registry is not None else GLOBAL_REGISTRY
    cached = getattr(attributed, _PUBLICATION_ATTR, None)
    if cached is None:
        return
    _version, ref = cached
    for array_ref in (ref.indptr, ref.indices, ref.event_nodes, ref.event_offsets):
        registry.release_ref(array_ref)
    setattr(attributed, _PUBLICATION_ATTR, None)


# -- worker-side dataset cache ------------------------------------------------

#: token -> (AttributedGraph, BFSEngine); bounded so long-lived workers do
#: not accumulate every graph version they ever served.
_DATASET_CACHE: "OrderedDict[str, tuple]" = OrderedDict()
MAX_CACHED_DATASETS = 4


def materialise_dataset(ref: DatasetRef):
    """Rebuild ``(attributed, bfs_engine)`` from a dataset ref, cached.

    Arrays are copied out of shared memory once per publication token; the
    resulting graph (with its warm indicator and BFS caches) then serves
    every task of every request until the parent publishes a new version.
    """
    cached = _DATASET_CACHE.get(ref.token)
    if cached is not None:
        _DATASET_CACHE.move_to_end(ref.token)
        return cached
    from repro.events.attributed_graph import AttributedGraph
    from repro.graph.csr import CSRGraph
    from repro.graph.traversal import BFSEngine

    indptr = read_array(ref.indptr)
    indices = read_array(ref.indices)
    nodes = read_array(ref.event_nodes)
    offsets = read_array(ref.event_offsets)
    mapping = {
        name: nodes[offsets[position]:offsets[position + 1]]
        for position, name in enumerate(ref.event_names)
    }
    attributed = AttributedGraph(CSRGraph(indptr, indices), mapping)
    entry = (attributed, BFSEngine(attributed.csr))
    while len(_DATASET_CACHE) >= MAX_CACHED_DATASETS:
        _DATASET_CACHE.popitem(last=False)
    _DATASET_CACHE[ref.token] = entry
    return entry
