"""The epoch-aware request executor behind the correlation server.

:class:`ServiceEngine` answers ``rank``/``topk``/``stream`` requests against
one (possibly dynamic) attributed graph, with three layers of reuse:

* **Samples** come from :class:`~repro.sampling.cache.SampleMemo` keyed by
  the current *epoch*, so every drawn sample is bit-identical to what a
  freshly constructed in-process engine would draw at that graph state;
* **Density matrices** (with their estimate batchers) are cached per
  ``(config, universe, events, epoch)`` and computed through the persistent
  worker pool when the engine runs with ``workers > 1``;
* **Per-pair results** are cached per ``(pair, config, universe, epoch)`` —
  the pair's estimate depends only on the shared sample (a function of the
  request universe, config and epoch) and the pair's two density rows, so
  the key is exact: a cached entry can never be served stale, because any
  commit that could change the answer bumps the epoch out from under it.

The epoch is an internal counter bumped whenever the underlying graph's
``(structure_version, events.version)`` moves — normally via :meth:`commit`
(the ``stream`` method), which runs under the writer side of a
readers-writer lock while ``rank``/``topk`` execute as readers.

Every answer is bit-identical to the serial in-process engines
(:class:`~repro.core.batch.BatchTescEngine`,
:class:`~repro.core.topk.ProgressiveTopKEngine`) applied to a snapshot of
the graph at the same epoch with the same seed — the property the epoch
cache suite asserts under random commit/query interleavings.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.batch import (
    SORT_KEYS,
    BatchTescEngine,
    RankedPair,
    ensure_uniform_sample,
    ensure_uniform_sampler,
    estimate_pair_list,
    event_universe,
    finalise_ranking,
    make_config_sampler,
    resolve_pair_spec,
)
from repro.core.config import TescConfig
from repro.core.density import DensityComputer, DensityMatrix
from repro.core.estimators import PairEstimateBatcher
from repro.core.parallel import estimate_matrix_pairs_sharded, resolve_workers
from repro.events.attributed_graph import AttributedGraph
from repro.exceptions import ConfigurationError, InsufficientSampleError
from repro.sampling.cache import SampleMemo, event_nodes_fingerprint
from repro.service.protocol import BadRequestError
from repro.service.shm import unpublish_dataset
from repro.streaming.delta import DeltaBatch
from repro.streaming.dynamic_graph import DynamicAttributedGraph


class _ReadWriteLock:
    """Readers-writer lock: many concurrent ranks, exclusive commits.

    Writer-preferring — a waiting commit blocks new readers — so a steady
    rank load cannot starve stream updates.
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._condition:
            while self._writer or self._writers_waiting:
                self._condition.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._condition:
            self._readers -= 1
            if not self._readers:
                self._condition.notify_all()

    def acquire_write(self) -> None:
        with self._condition:
            self._writers_waiting += 1
            while self._writer or self._readers:
                self._condition.wait()
            self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._condition:
            self._writer = False
            self._condition.notify_all()

    class _Guard:
        def __init__(self, acquire, release):
            self._acquire, self._release = acquire, release

        def __enter__(self):
            self._acquire()

        def __exit__(self, *_exc):
            self._release()

    def read(self) -> "_ReadWriteLock._Guard":
        return self._Guard(self.acquire_read, self.release_read)

    def write(self) -> "_ReadWriteLock._Guard":
        return self._Guard(self.acquire_write, self.release_write)


def pair_record(pair: RankedPair) -> Dict[str, Any]:
    """One ranked pair as a JSON-safe record (all fields, exact floats)."""
    return {
        "rank": pair.rank,
        "event_a": pair.event_a,
        "event_b": pair.event_b,
        "score": pair.score,
        "z_score": pair.z_score,
        "p_value": pair.p_value,
        "verdict": pair.verdict.value,
        "num_reference_nodes": pair.num_reference_nodes,
        "degenerate": pair.degenerate,
        "insufficient": pair.insufficient,
    }


@dataclass
class ServiceStats:
    """Lifetime counters of one :class:`ServiceEngine`."""

    rank_requests: int = 0
    topk_requests: int = 0
    commits: int = 0
    pair_cache_hits: int = 0
    pair_cache_misses: int = 0
    topk_cache_hits: int = 0
    matrices_computed: int = 0


class ServiceEngine:
    """Epoch-cached ``rank``/``topk``/``stream`` execution over one graph.

    Parameters
    ----------
    graph:
        The graph to serve.  ``stream`` (delta commits) requires a
        :class:`~repro.streaming.dynamic_graph.DynamicAttributedGraph`;
        a plain :class:`~repro.events.attributed_graph.AttributedGraph` is
        served read-only.
    config:
        Default :class:`~repro.core.config.TescConfig`; requests may
        override whitelisted fields per call.
    workers:
        Worker processes for density/estimate fan-out through the
        process-wide persistent pool (``1`` = in-process serial compute —
        still bit-identical, the pool changes nothing but wall-clock).
    max_cached_results / max_cached_matrices / max_cached_topk:
        LRU bounds of the per-pair result cache, the density-matrix cache
        and the whole-response top-k cache.
    """

    def __init__(
        self,
        graph: AttributedGraph,
        config: Optional[TescConfig] = None,
        workers: Optional[int] = None,
        max_cached_results: int = 65536,
        max_cached_matrices: int = 8,
        max_cached_topk: int = 64,
    ) -> None:
        self.graph = graph
        self.config = config if config is not None else TescConfig()
        ensure_uniform_sampler(self.config, "the correlation service")
        self.workers = resolve_workers(workers)
        self.max_cached_results = max(1, int(max_cached_results))
        self.max_cached_matrices = max(1, int(max_cached_matrices))
        self.max_cached_topk = max(1, int(max_cached_topk))

        self._lock = _ReadWriteLock()
        self._miss_lock = threading.Lock()
        self._epoch_lock = threading.Lock()
        self._epoch = 0
        self._seen_versions = self._graph_versions()

        self._memos: Dict[tuple, SampleMemo] = {}
        self._matrices: "OrderedDict[tuple, Tuple[DensityMatrix, PairEstimateBatcher]]" = (
            OrderedDict()
        )
        self._results: "OrderedDict[tuple, RankedPair]" = OrderedDict()
        self._topk_cache: "OrderedDict[tuple, Dict[str, Any]]" = OrderedDict()
        self.stats = ServiceStats()

    # -- epoch plumbing ------------------------------------------------------

    def _graph_versions(self) -> Tuple[int, int]:
        return (
            int(getattr(self.graph, "structure_version", 0)),
            int(self.graph.events.version),
        )

    def current_epoch(self) -> int:
        """The epoch of the graph's current state (bumps on version change).

        Monotonic and atomic: any observed epoch uniquely identifies one
        ``(structure_version, events.version)`` graph state, which is what
        makes the epoch a sound cache-key component.
        """
        versions = self._graph_versions()
        with self._epoch_lock:
            if versions != self._seen_versions:
                self._seen_versions = versions
                self._epoch += 1
            return self._epoch

    # -- config plumbing -----------------------------------------------------

    def _merge_config(self, overrides: Dict[str, Any]) -> TescConfig:
        if not overrides:
            return self.config
        merged = dict(asdict(self.config))
        merged.update(overrides)
        try:
            cfg = TescConfig(**merged)
        except (TypeError, ValueError) as exc:
            raise BadRequestError(f"invalid config override: {exc}") from exc
        ensure_uniform_sampler(cfg, "the correlation service")
        return cfg

    @staticmethod
    def _config_digest(cfg: TescConfig) -> tuple:
        items = asdict(cfg)
        seed = items.pop("random_state")
        seed_token = seed if seed is None or isinstance(seed, int) else id(seed)
        return tuple(sorted(items.items())) + (("random_state", seed_token),)

    def _memo(self, cfg: TescConfig) -> SampleMemo:
        key = (
            cfg.sampler, cfg.batch_per_vicinity, cfg.vicinity_level,
            self._config_digest(cfg)[-1],
        )
        memo = self._memos.get(key)
        if memo is None:
            graph = self.graph
            memo = SampleMemo(lambda: make_config_sampler(graph, cfg))
            self._memos[key] = memo
        return memo

    # -- rank ----------------------------------------------------------------

    def rank(
        self,
        pairs="all",
        top_k: Optional[int] = None,
        sort_by: str = "score",
        config_overrides: Optional[Dict[str, Any]] = None,
        on_insufficient: str = "keep",
    ) -> Dict[str, Any]:
        """Rank ``pairs``, serving cached per-pair results where possible.

        Bit-identical to ``BatchTescEngine(snapshot, cfg).rank_pairs(...)``
        at the current epoch: hits and misses alike derive from the memoised
        fresh-sampler draw over the request universe.
        """
        if sort_by not in SORT_KEYS:
            raise ConfigurationError(
                f"sort_by must be one of {SORT_KEYS}, got {sort_by!r}"
            )
        if on_insufficient not in ("keep", "raise"):
            raise ConfigurationError(
                f'on_insufficient must be "keep" or "raise", got {on_insufficient!r}'
            )
        cfg = self._merge_config(config_overrides or {})
        with self._lock.read():
            self.stats.rank_requests += 1
            epoch = self.current_epoch()
            pair_list = resolve_pair_spec(self.graph.event_names(), pairs)
            events = sorted({event for pair in pair_list for event in pair})
            # Surfaces unknown events before any sampling work happens.
            self.graph.indicator_matrix(events)
            universe = event_universe(self.graph, events)
            universe_fp = event_nodes_fingerprint(universe)
            digest = self._config_digest(cfg)

            by_pair: Dict[Tuple[str, str], RankedPair] = {}
            missing: List[Tuple[str, str]] = []
            for pair in pair_list:
                cached = self._results.get((pair, digest, universe_fp, epoch))
                if cached is not None:
                    by_pair[pair] = cached
                else:
                    missing.append(pair)
            hits = len(pair_list) - len(missing)
            self.stats.pair_cache_hits += hits
            if missing:
                computed = self._compute_pairs(
                    cfg, events, universe, universe_fp, digest, epoch,
                    missing, on_insufficient,
                )
                by_pair.update(computed)
                self.stats.pair_cache_misses += len(missing)
            results = [by_pair[pair] for pair in pair_list]
            if on_insufficient == "raise":
                for pair in results:
                    if pair.insufficient:
                        raise InsufficientSampleError(
                            f"pair ({pair.event_a!r}, {pair.event_b!r}) has only "
                            f"{pair.num_reference_nodes} reference nodes in the "
                            "shared sample"
                        )
            ranked = finalise_ranking(results, sort_by, top_k)
        return {
            "pairs": [pair_record(pair) for pair in ranked],
            "epoch": epoch,
            "sort_by": sort_by,
            "alpha": cfg.alpha,
            "vicinity_level": cfg.vicinity_level,
            "cached_pairs": hits,
            "computed_pairs": len(missing),
        }

    def _compute_pairs(
        self,
        cfg: TescConfig,
        events: Sequence[str],
        universe,
        universe_fp: str,
        digest: tuple,
        epoch: int,
        missing: List[Tuple[str, str]],
        on_insufficient: str,
    ) -> Dict[Tuple[str, str], RankedPair]:
        """Estimate the cache-missing pairs and record them.

        Serialised by ``_miss_lock`` so concurrent identical requests
        compute the shared sample/matrix once; the cache is re-checked
        under the lock for pairs another thread just filled.
        """
        with self._miss_lock:
            computed: Dict[Tuple[str, str], RankedPair] = {}
            still_missing: List[Tuple[str, str]] = []
            for pair in missing:
                cached = self._results.get((pair, digest, universe_fp, epoch))
                if cached is not None:
                    computed[pair] = cached
                else:
                    still_missing.append(pair)
            if not still_missing:
                return computed

            matrix, batcher = self._matrix_for(
                cfg, tuple(events), universe, universe_fp, epoch
            )
            row_of = {event: row for row, event in enumerate(events)}
            # Insufficient pairs are cached as insufficient records even in
            # "raise" mode; the caller raises after assembly, and "keep"
            # requests for the same pair still hit the cache.
            if self.workers > 1 and len(still_missing) > 1:
                from repro.service.pool import global_pool

                fresh = estimate_matrix_pairs_sharded(
                    global_pool(), matrix, row_of, still_missing, cfg,
                    "keep", self.workers,
                )
            else:
                fresh = estimate_pair_list(
                    still_missing, row_of, matrix, batcher, cfg, "keep"
                )
            for pair_result in fresh:
                pair = pair_result.events
                computed[pair] = pair_result
                self._results[(pair, digest, universe_fp, epoch)] = pair_result
            while len(self._results) > self.max_cached_results:
                self._results.popitem(last=False)
            return computed

    def _matrix_for(
        self,
        cfg: TescConfig,
        events: Tuple[str, ...],
        universe,
        universe_fp: str,
        epoch: int,
    ) -> Tuple[DensityMatrix, PairEstimateBatcher]:
        """The epoch's density matrix over the request events, cached."""
        key = (
            cfg.sampler, cfg.batch_per_vicinity,
            self._config_digest(cfg)[-1],
            universe_fp, cfg.vicinity_level, cfg.sample_size,
            cfg.kendall_kernel, cfg.kendall_crossover,
            events, epoch,
        )
        cached = self._matrices.get(key)
        if cached is not None:
            self._matrices.move_to_end(key)
            return cached
        memo = self._memo(cfg)
        sample = memo.sample(
            universe, cfg.vicinity_level, cfg.sample_size, epoch=epoch
        )
        ensure_uniform_sample(sample, cfg.sampler)
        if self.workers > 1 and sample.nodes.size > 1:
            from repro.service.pool import global_pool, pooled_density_matrix

            matrix, _bfs = pooled_density_matrix(
                global_pool(), self.graph, sample.nodes, events,
                cfg.vicinity_level, self.workers,
            )
        else:
            computer = DensityComputer(self.graph.csr)
            indicators = self.graph.indicator_matrix(list(events))
            matrix = computer.density_matrix(
                sample.nodes, indicators, cfg.vicinity_level
            )
        batcher = PairEstimateBatcher(
            matrix.densities,
            kernel=cfg.kendall_kernel,
            crossover=cfg.kendall_crossover,
        )
        while len(self._matrices) >= self.max_cached_matrices:
            self._matrices.popitem(last=False)
        self._matrices[key] = (matrix, batcher)
        self.stats.matrices_computed += 1
        return matrix, batcher

    # -- topk ----------------------------------------------------------------

    def topk(
        self,
        k: int,
        pairs="all",
        sort_by: str = "score",
        config_overrides: Optional[Dict[str, Any]] = None,
        on_insufficient: str = "keep",
    ) -> Dict[str, Any]:
        """Progressive top-k at the current epoch (whole-response cached).

        A fresh :class:`~repro.core.topk.ProgressiveTopKEngine` per miss
        reproduces exactly what an in-process run on a snapshot would
        return; the response is cached per ``(k, pairs, config, epoch)``.
        """
        from repro.core.topk import ProgressiveTopKEngine

        cfg = self._merge_config(config_overrides or {})
        with self._lock.read():
            self.stats.topk_requests += 1
            epoch = self.current_epoch()
            pair_list = resolve_pair_spec(self.graph.event_names(), pairs)
            key = (
                int(k), tuple(pair_list), sort_by,
                self._config_digest(cfg), epoch,
            )
            cached = self._topk_cache.get(key)
            if cached is not None:
                self.stats.topk_cache_hits += 1
                return cached
            with self._miss_lock:
                cached = self._topk_cache.get(key)
                if cached is not None:
                    self.stats.topk_cache_hits += 1
                    return cached
                engine = ProgressiveTopKEngine(
                    self.graph, cfg, workers=self.workers
                )
                try:
                    ranking = engine.top_k(
                        int(k), pair_list, sort_by=sort_by,
                        on_insufficient=on_insufficient,
                    )
                finally:
                    engine.close()
                result = {
                    "pairs": [pair_record(pair) for pair in ranking],
                    "epoch": epoch,
                    "k": int(k),
                    "sort_by": sort_by,
                    "pairs_pruned": ranking.topk_stats.pairs_pruned,
                    "pairs_survived": ranking.topk_stats.pairs_survived,
                }
                self._topk_cache[key] = result
                while len(self._topk_cache) > self.max_cached_topk:
                    self._topk_cache.popitem(last=False)
                return result

    # -- stream --------------------------------------------------------------

    def commit(self, delta_records: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
        """Apply one delta batch (exclusive) and report its net effect.

        Takes the writer lock, so every in-flight ``rank``/``topk`` drains
        first and every later one observes the bumped epoch — a cached
        ``(pair, epoch)`` entry can therefore never be served after a
        commit that might have invalidated it.
        """
        if not isinstance(self.graph, DynamicAttributedGraph):
            raise BadRequestError(
                "this server is static: stream commits need a dynamic graph "
                "(construct the engine over a DynamicAttributedGraph)"
            )
        from repro.streaming.delta import Delta

        try:
            batch = DeltaBatch(
                deltas=tuple(Delta.from_record(record) for record in delta_records)
            )
        except Exception as exc:
            raise BadRequestError(f"invalid delta batch: {exc}") from exc
        with self._lock.write():
            self.stats.commits += 1
            applied = self.graph.apply(batch)
            epoch = self.current_epoch()
        return {
            "epoch": epoch,
            "structure_version": applied.structure_version,
            "added_edges": len(applied.added_edges),
            "removed_edges": len(applied.removed_edges),
            "attached": len(applied.attached),
            "detached": len(applied.detached),
            "changed": applied.changed,
        }

    # -- introspection / lifecycle -------------------------------------------

    def describe(self) -> Dict[str, Any]:
        """Status snapshot (epoch, versions, cache occupancy, counters)."""
        structure_version, events_version = self._graph_versions()
        return {
            "epoch": self.current_epoch(),
            "structure_version": structure_version,
            "events_version": events_version,
            "num_events": len(self.graph.event_names()),
            "num_nodes": self.graph.num_nodes,
            "num_edges": self.graph.num_edges,
            "workers": self.workers,
            "dynamic": isinstance(self.graph, DynamicAttributedGraph),
            "cached_pair_results": len(self._results),
            "cached_matrices": len(self._matrices),
            "cached_topk": len(self._topk_cache),
            "stats": asdict(self.stats),
        }

    def reference_ranking(self, pairs="all", top_k=None, sort_by="score",
                          config_overrides=None):
        """A from-scratch serial ranking of the *current* graph state.

        Test/debug helper: what a fresh
        :class:`~repro.core.batch.BatchTescEngine` over a snapshot returns
        right now — the baseline every service answer must match bit for
        bit.
        """
        cfg = self._merge_config(config_overrides or {})
        snapshot = (
            self.graph.snapshot()
            if isinstance(self.graph, DynamicAttributedGraph)
            else self.graph
        )
        return BatchTescEngine(snapshot, cfg).rank_pairs(
            pairs, top_k=top_k, sort_by=sort_by
        )

    def close(self) -> None:
        """Drop caches and unlink this graph's shared-memory publication."""
        with self._miss_lock:
            self._results.clear()
            self._matrices.clear()
            self._topk_cache.clear()
            self._memos.clear()
        unpublish_dataset(self.graph)
