"""The snapshot-isolated (MVCC) request executor behind the correlation server.

:class:`ServiceEngine` answers ``rank``/``topk``/``stream`` requests against
one (possibly dynamic) attributed graph under **pin-at-admission snapshot
isolation**: a read request resolves its epoch on entry, pins that epoch's
copy-on-write snapshot through the graph's lease table
(:mod:`repro.streaming.snapshots`), and computes entirely against the frozen
state — so commits never block readers and readers never block commits.
Every response carries the epoch it was computed at, and ``at_epoch``
requests re-read any epoch still retained by a lease.

Three layers of reuse keep the hot path cheap:

* **Samples** come from :class:`~repro.sampling.cache.SampleMemo` keyed by
  the epoch and drawn against the pinned snapshot, so every sample is
  bit-identical to what a freshly constructed in-process engine would draw
  at that graph state;
* **Density matrices** (with their estimate batchers) are cached per
  ``(config, universe, events, epoch)`` and computed through the persistent
  worker pool when the engine runs with ``workers > 1``;
* **Per-pair results** are cached per ``(pair, config, universe, epoch)`` —
  the pair's estimate depends only on the shared sample (a function of the
  request universe, config and epoch) and the pair's two density rows, so
  the key is exact: a cached entry can never be served stale, because any
  commit that could change the answer lands at a different epoch.

For a dynamic graph the epoch *is* the graph's commit epoch
(:attr:`~repro.streaming.dynamic_graph.DynamicAttributedGraph.epoch` — one
bump per effective commit); static graphs keep an internal version-watching
counter and serve reads from the live object (nothing can move under them).
Commits serialise on a plain mutex — the old readers-writer lock is gone
from the request path (:class:`_ReadWriteLock` remains exported for the
lock-serialised baseline the HTAP benchmark compares against).

Every answer is bit-identical to the serial in-process engines
(:class:`~repro.core.batch.BatchTescEngine`,
:class:`~repro.core.topk.ProgressiveTopKEngine`) applied to a snapshot of
the graph at the same epoch with the same seed — the property the epoch
cache and HTAP suites assert under random commit/query interleavings.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import OrderedDict
from dataclasses import asdict
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.batch import (
    SORT_KEYS,
    BatchTescEngine,
    RankedPair,
    ensure_uniform_sample,
    ensure_uniform_sampler,
    estimate_pair_list,
    event_universe,
    finalise_ranking,
    make_config_sampler,
    resolve_pair_spec,
)
from repro.core.config import TescConfig
from repro.core.density import DensityComputer, DensityMatrix
from repro.core.estimators import PairEstimateBatcher
from repro.core.parallel import estimate_matrix_pairs_sharded, resolve_workers
from repro.events.attributed_graph import AttributedGraph
from repro.exceptions import (
    ConfigurationError,
    EdgeError,
    EventError,
    InsufficientSampleError,
    NodeNotFoundError,
    SnapshotExpiredError,
)
from repro.obs import (
    MetricsRegistry,
    SlowRequestLog,
    Span,
    TraceBuffer,
    stage,
    trace,
)
from repro.sampling.cache import SampleMemo, event_nodes_fingerprint
from repro.service.pool import (
    CircuitBreaker,
    PoolSupervisor,
    WorkerCrashedError,
    global_pool,
)
from repro.service.protocol import BadRequestError, UnavailableError
from repro.service.shm import unpublish_dataset
from repro.storage.checkpoint import CheckpointStore, digest_string
from repro.storage.recovery import RecoveryReport
from repro.streaming.delta import DeltaBatch, WriteAheadLog
from repro.streaming.dynamic_graph import DynamicAttributedGraph
from repro.streaming.snapshots import SnapshotLease
from repro.utils import deadlines

logger = logging.getLogger(__name__)


class _ReadWriteLock:
    """Readers-writer lock: many concurrent ranks, exclusive commits.

    Writer-preferring — a waiting commit blocks new readers — so a steady
    rank load cannot starve stream updates.

    No longer on the service request path (snapshot isolation replaced it);
    kept as the reference lock for the HTAP benchmark's lock-serialised
    baseline and for callers that want coarse coordination.
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._condition:
            while self._writer or self._writers_waiting:
                self._condition.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._condition:
            self._readers -= 1
            if not self._readers:
                self._condition.notify_all()

    def acquire_write(self) -> None:
        with self._condition:
            self._writers_waiting += 1
            while self._writer or self._readers:
                self._condition.wait()
            self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._condition:
            self._writer = False
            self._condition.notify_all()

    class _Guard:
        def __init__(self, acquire, release):
            self._acquire, self._release = acquire, release

        def __enter__(self):
            self._acquire()

        def __exit__(self, *_exc):
            self._release()

    def read(self) -> "_ReadWriteLock._Guard":
        return self._Guard(self.acquire_read, self.release_read)

    def write(self) -> "_ReadWriteLock._Guard":
        return self._Guard(self.acquire_write, self.release_write)


def pair_record(pair: RankedPair) -> Dict[str, Any]:
    """One ranked pair as a JSON-safe record (all fields, exact floats)."""
    return {
        "rank": pair.rank,
        "event_a": pair.event_a,
        "event_b": pair.event_b,
        "score": pair.score,
        "z_score": pair.z_score,
        "p_value": pair.p_value,
        "verdict": pair.verdict.value,
        "num_reference_nodes": pair.num_reference_nodes,
        "degenerate": pair.degenerate,
        "insufficient": pair.insufficient,
    }


class ServiceEngine:
    """Snapshot-isolated ``rank``/``topk``/``stream`` execution over one graph.

    Parameters
    ----------
    graph:
        The graph to serve.  ``stream`` (delta commits) and ``at_epoch``
        time travel require a
        :class:`~repro.streaming.dynamic_graph.DynamicAttributedGraph`;
        a plain :class:`~repro.events.attributed_graph.AttributedGraph` is
        served read-only from the live object.
    config:
        Default :class:`~repro.core.config.TescConfig`; requests may
        override whitelisted fields per call.
    workers:
        Worker processes for density/estimate fan-out through the
        process-wide persistent pool (``1`` = in-process serial compute —
        still bit-identical, the pool changes nothing but wall-clock).
    max_cached_results / max_cached_matrices / max_cached_topk:
        LRU bounds of the per-pair result cache, the density-matrix cache
        and the whole-response top-k cache.
    metrics:
        The :class:`~repro.obs.MetricsRegistry` to instrument into.  The
        default is a fresh enabled registry owned by this engine, so one
        server's counters reconcile exactly with its own request history;
        pass :data:`~repro.obs.NULL_REGISTRY` for a no-op build (the
        overhead benchmark's baseline).
    trace_buffer_size:
        How many recent request span trees to retain in
        :attr:`trace_buffer` for introspection.
    slow_request_seconds:
        Requests slower than this are emitted as JSON lines through the
        ``repro.obs.slowlog`` logger, span tree included (``None``
        disables the slow-request log).
    wal:
        Optional :class:`~repro.streaming.delta.WriteAheadLog` (or a path
        to open one at).  When set, ``stream`` commits are appended — CRC'd
        and fsynced — *before* they apply, so a killed process restarted
        with the same WAL replays back to the last committed epoch.  The
        engine does **not** replay on construction (callers replay before
        serving; see ``tesc serve --wal``).
    breaker:
        Optional :class:`~repro.service.pool.CircuitBreaker` guarding the
        pooled compute paths (a default one is built when ``workers > 1``).
        When the pool keeps crashing, the breaker opens and requests run
        the bit-identical serial path instead of erroring.
    store:
        Optional :class:`~repro.storage.checkpoint.CheckpointStore` (or a
        directory path to open one at).  Enables :meth:`checkpoint`:
        full-state checkpoints cut off the commit path against a pinned
        snapshot epoch, followed by WAL compaction of the covered prefix.
        Like ``wal``, requires a dynamic graph.
    checkpoint_interval:
        Seconds between automatic background checkpoints (``None``/``0``
        disables the background thread; :meth:`checkpoint` stays callable).
    checkpoint_retain:
        Valid checkpoints kept after each successful new one.
    """

    def __init__(
        self,
        graph: AttributedGraph,
        config: Optional[TescConfig] = None,
        workers: Optional[int] = None,
        max_cached_results: int = 65536,
        max_cached_matrices: int = 8,
        max_cached_topk: int = 64,
        metrics: Optional[MetricsRegistry] = None,
        trace_buffer_size: int = 64,
        slow_request_seconds: Optional[float] = None,
        wal: Optional[Any] = None,
        breaker: Optional[CircuitBreaker] = None,
        store: Optional[Any] = None,
        checkpoint_interval: Optional[float] = None,
        checkpoint_retain: int = 2,
    ) -> None:
        self.graph = graph
        self.config = config if config is not None else TescConfig()
        ensure_uniform_sampler(self.config, "the correlation service")
        self.workers = resolve_workers(workers)
        self.max_cached_results = max(1, int(max_cached_results))
        self.max_cached_matrices = max(1, int(max_cached_matrices))
        self.max_cached_topk = max(1, int(max_cached_topk))

        self._dynamic = isinstance(graph, DynamicAttributedGraph)
        self._commit_lock = threading.Lock()
        self._miss_lock = threading.Lock()
        self._epoch_lock = threading.Lock()
        self._epoch = 0
        self._seen_versions = self._graph_versions()

        if wal is not None and not self._dynamic:
            raise ConfigurationError(
                "a write-ahead log needs a dynamic graph (commits are what "
                "it records); construct the engine over a "
                "DynamicAttributedGraph or drop wal="
            )
        self._wal: Optional[WriteAheadLog] = (
            wal if wal is None or isinstance(wal, WriteAheadLog)
            else WriteAheadLog(wal)
        )
        if store is not None and not self._dynamic:
            raise ConfigurationError(
                "a checkpoint store needs a dynamic graph (epochs are what "
                "it checkpoints); construct the engine over a "
                "DynamicAttributedGraph or drop store="
            )
        self._store: Optional[CheckpointStore] = (
            store if store is None or isinstance(store, CheckpointStore)
            else CheckpointStore(store, retain=checkpoint_retain)
        )
        if self._store is not None:
            self._store.retain = max(1, int(checkpoint_retain))
        self._ckpt_lock = threading.Lock()
        self._last_checkpoint_epoch: Optional[int] = None
        self._recovery_report: Optional[RecoveryReport] = None
        self.checkpoint_interval = (
            float(checkpoint_interval) if checkpoint_interval else None
        )
        self._ckpt_stop = threading.Event()
        self._ckpt_thread: Optional[threading.Thread] = None
        self.supervisor = PoolSupervisor(global_pool(), breaker)
        # rid -> cached commit result: makes retried stream commits
        # idempotent (a lost response must not re-apply the batch).
        self._commit_rids: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._max_commit_rids = 1024

        self._memos: Dict[tuple, SampleMemo] = {}
        self._matrices: "OrderedDict[tuple, Tuple[DensityMatrix, PairEstimateBatcher]]" = (
            OrderedDict()
        )
        self._results: "OrderedDict[tuple, RankedPair]" = OrderedDict()
        self._topk_cache: "OrderedDict[tuple, Dict[str, Any]]" = OrderedDict()
        # epoch -> snapshot whose shared-memory publication this engine may
        # have triggered; swept once the lease table no longer retains it.
        self._published: Dict[int, AttributedGraph] = {}
        self._publish_lock = threading.Lock()

        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.trace_buffer = TraceBuffer(trace_buffer_size)
        self.slow_log = SlowRequestLog(slow_request_seconds)
        self._instrument()
        if self._store is not None and self.checkpoint_interval:
            self._ckpt_thread = threading.Thread(
                target=self._checkpoint_loop,
                name="tesc-checkpoint",
                daemon=True,
            )
            self._ckpt_thread.start()

    def _instrument(self) -> None:
        """Register this engine's metric families on :attr:`metrics`."""
        m = self.metrics
        self._m_requests = m.counter(
            "tesc_requests_total", "Requests the engine executed, by method.",
            labels=("method",),
        )
        self._m_request_seconds = m.histogram(
            "tesc_request_seconds", "Request latency in seconds, by method.",
            labels=("method",),
        )
        self._m_pair_hits = m.counter(
            "tesc_pair_cache_hits_total",
            "Per-pair results served from the epoch-keyed cache.",
        )
        self._m_pair_misses = m.counter(
            "tesc_pair_cache_misses_total",
            "Per-pair results computed on epoch-keyed cache misses.",
        )
        self._m_coalesced = m.counter(
            "tesc_singleflight_coalesced_total",
            "Pair results adopted from a concurrent identical computation "
            "instead of being recomputed (single-flight re-check hits).",
        )
        self._m_topk_hits = m.counter(
            "tesc_topk_cache_hits_total",
            "Whole top-k responses served from the epoch-keyed cache.",
        )
        self._m_matrices = m.counter(
            "tesc_matrices_computed_total",
            "Shared density matrices computed (cache misses).",
        )
        self._m_pins = m.counter(
            "tesc_snapshots_pinned_total",
            "Snapshot leases taken by reads (pin-at-admission).",
        )
        self._m_active_pins = m.gauge(
            "tesc_reader_pins",
            "Snapshot leases currently held by in-flight reads.",
        )
        self._m_commits = m.counter(
            "tesc_commits_total", "Delta batches committed."
        )
        self._m_commit_seconds = m.histogram(
            "tesc_commit_seconds",
            "Commit latency in seconds (apply + epoch publication).",
        )
        self._m_commit_replays = m.counter(
            "tesc_commit_replays_total",
            "Stream commits answered from the rid dedup table (idempotent "
            "retries of a batch that already applied).",
        )
        self._m_wal_commits = m.counter(
            "tesc_wal_commits_total",
            "Delta batches durably appended to the write-ahead log.",
        )
        self._m_wal_failures = m.counter(
            "tesc_wal_failures_total",
            "Write-ahead appends that failed (commit rejected with 503, "
            "graph untouched).",
        )
        self._m_checkpoints = m.counter(
            "tesc_checkpoints_total",
            "Checkpoints successfully committed to the store.",
        )
        self._m_checkpoint_failures = m.counter(
            "tesc_checkpoint_failures_total",
            "Checkpoint attempts that failed (previous checkpoint stays "
            "authoritative).",
        )
        self._m_checkpoint_seconds = m.histogram(
            "tesc_checkpoint_seconds",
            "Checkpoint duration in seconds (serialise + fsync + rename + "
            "WAL compaction).",
        )
        self._m_wal_compacted = m.counter(
            "tesc_wal_compacted_bytes_total",
            "WAL bytes reclaimed by post-checkpoint compaction.",
        )
        self._m_recovery = m.counter(
            "tesc_recovery_total",
            "Cold starts by recovery path (checkpoint, fallback, "
            "full_replay, fresh).",
            labels=("path",),
        )
        self._m_pool_fallbacks = m.counter(
            "tesc_pool_fallbacks_total",
            "Pooled compute phases that failed mid-request and were "
            "recomputed on the bit-identical serial path.",
        )
        self._m_degraded_requests = m.counter(
            "tesc_degraded_requests_total",
            "rank/topk requests served while the pool circuit breaker "
            "distrusted the pool (serial degraded mode).",
        )
        m.gauge(
            "tesc_degraded_mode",
            "1 while the pool circuit breaker is open or half-open "
            "(requests run the serial fallback), else 0.",
        ).set_function(lambda: 1.0 if self.supervisor.degraded else 0.0)
        m.gauge(
            "tesc_breaker_transitions",
            "Circuit-breaker state transitions (lifetime).",
        ).set_function(lambda: float(self.supervisor.breaker.transitions))
        m.gauge(
            "tesc_cached_pair_results", "Entries in the per-pair result cache."
        ).set_function(lambda: len(self._results))
        m.gauge(
            "tesc_cached_matrices", "Entries in the density-matrix cache."
        ).set_function(lambda: len(self._matrices))
        m.gauge(
            "tesc_cached_topk", "Entries in the whole-response top-k cache."
        ).set_function(lambda: len(self._topk_cache))
        if self._dynamic:
            m.gauge(
                "tesc_retained_epochs",
                "Epochs whose snapshots the lease table still holds.",
            ).set_function(lambda: len(self.graph.retained_epochs()))
            m.gauge(
                "tesc_retained_bytes",
                "CSR row bytes retained across kept snapshots.",
            ).set_function(self.graph.retained_bytes)
            m.gauge(
                "tesc_lease_sweeps",
                "Snapshot states the lease table has retired (lifetime).",
            ).set_function(lambda: self.graph.lease_sweeps)

    def _finish_trace(self, span: Span) -> None:
        """Root-span sink: retain the tree, emit the slow-request log."""
        self.trace_buffer.record(span)
        self.slow_log.maybe_log(span)

    # -- epoch plumbing ------------------------------------------------------

    def _graph_versions(self) -> Tuple[int, int]:
        return (
            int(getattr(self.graph, "structure_version", 0)),
            int(self.graph.events.version),
        )

    def current_epoch(self) -> int:
        """The epoch of the graph's current state.

        Dynamic graphs report their own commit epoch (one bump per effective
        commit, out-of-band mutations healed); static graphs keep an
        internal counter bumped whenever the version pair moves.  Monotonic
        and atomic either way: any observed epoch uniquely identifies one
        ``(structure_version, events.version)`` graph state, which is what
        makes the epoch a sound cache-key component.
        """
        if self._dynamic:
            return self.graph.epoch
        versions = self._graph_versions()
        with self._epoch_lock:
            if versions != self._seen_versions:
                self._seen_versions = versions
                self._epoch += 1
            return self._epoch

    def _pin(
        self, at_epoch: Optional[int]
    ) -> Tuple[int, AttributedGraph, Optional[SnapshotLease]]:
        """Pin-at-admission: resolve the epoch and the graph state to read.

        Dynamic graphs hand back a leased
        :class:`~repro.streaming.snapshots.GraphSnapshot` (the caller must
        release the lease when the read completes); static graphs hand back
        the live object.  ``at_epoch`` on a static graph is accepted only
        for the current epoch.
        """
        if self._dynamic:
            lease = self.graph.pin(at_epoch)
            self._m_pins.inc()
            self._m_active_pins.inc()
            return lease.epoch, lease.graph, lease
        epoch = self.current_epoch()
        if at_epoch is not None and int(at_epoch) != epoch:
            raise SnapshotExpiredError(
                f"epoch {int(at_epoch)} is not available on a static graph "
                f"(current epoch is {epoch})"
            )
        return epoch, self.graph, None

    # -- config plumbing -----------------------------------------------------

    def _merge_config(self, overrides: Dict[str, Any]) -> TescConfig:
        if not overrides:
            return self.config
        merged = dict(asdict(self.config))
        merged.update(overrides)
        try:
            cfg = TescConfig(**merged)
        except (TypeError, ValueError) as exc:
            raise BadRequestError(f"invalid config override: {exc}") from exc
        ensure_uniform_sampler(cfg, "the correlation service")
        return cfg

    @staticmethod
    def _config_digest(cfg: TescConfig, persistent: bool = False) -> tuple:
        """The config identity tuple cache keys and checkpoints key on.

        Non-int seeds (e.g. a ``Generator``) are tokenised by ``id()`` for
        in-process keys — distinct objects draw distinct streams, so they
        must not share a memo.  ``persistent=True`` swaps in a stable
        sentinel: ``id()`` changes across processes, and a digest written
        into a checkpoint manifest must still match the same config after a
        restart or every checkpoint would be rejected at boot.
        """
        items = asdict(cfg)
        items.pop("random_state")
        # asdict deep-copies field values; id() must see the live object on
        # the config, not a throwaway copy whose address the allocator may
        # hand to the next caller.
        seed = cfg.random_state
        if seed is None or isinstance(seed, int):
            seed_token: object = seed
        elif persistent:
            seed_token = "unseeded-object"
        else:
            seed_token = id(seed)
        return tuple(sorted(items.items())) + (("random_state", seed_token),)

    def _memo(self, cfg: TescConfig) -> SampleMemo:
        key = (
            cfg.sampler, cfg.batch_per_vicinity, cfg.vicinity_level,
            self._config_digest(cfg)[-1],
        )
        memo = self._memos.get(key)
        if memo is None:
            live = self.graph
            memo = SampleMemo(
                lambda graph=None: make_config_sampler(
                    live if graph is None else graph, cfg
                ),
                metrics=self.metrics,
            )
            self._memos[key] = memo
        return memo

    # -- rank ----------------------------------------------------------------

    def rank(
        self,
        pairs="all",
        top_k: Optional[int] = None,
        sort_by: str = "score",
        config_overrides: Optional[Dict[str, Any]] = None,
        on_insufficient: str = "keep",
        at_epoch: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Rank ``pairs`` at a pinned snapshot, serving cached results.

        Bit-identical to ``BatchTescEngine(snapshot, cfg).rank_pairs(...)``
        at the pinned epoch: hits and misses alike derive from the memoised
        fresh-sampler draw over the request universe.  ``at_epoch=None``
        pins the current epoch; an explicit epoch re-reads that state as
        long as some lease still retains it
        (:class:`~repro.exceptions.SnapshotExpiredError` otherwise).
        Commits never block this call and it never blocks commits.
        """
        if sort_by not in SORT_KEYS:
            raise ConfigurationError(
                f"sort_by must be one of {SORT_KEYS}, got {sort_by!r}"
            )
        if on_insufficient not in ("keep", "raise"):
            raise ConfigurationError(
                f'on_insufficient must be "keep" or "raise", got {on_insufficient!r}'
            )
        cfg = self._merge_config(config_overrides or {})
        self._m_requests.labels(method="rank").inc()
        if self.workers > 1 and self.supervisor.degraded:
            self._m_degraded_requests.inc()
        with trace("rank", sink=self._finish_trace) as span:
            epoch, graph, lease = self._pin(at_epoch)
            try:
                deadlines.checkpoint()
                pair_list = resolve_pair_spec(graph.event_names(), pairs)
                events = sorted({event for pair in pair_list for event in pair})
                # Surfaces unknown events before any sampling work happens.
                graph.indicator_matrix(events)
                universe = event_universe(graph, events)
                universe_fp = event_nodes_fingerprint(universe)
                digest = self._config_digest(cfg)

                by_pair: Dict[Tuple[str, str], RankedPair] = {}
                missing: List[Tuple[str, str]] = []
                for pair in pair_list:
                    cached = self._results.get((pair, digest, universe_fp, epoch))
                    if cached is not None:
                        by_pair[pair] = cached
                    else:
                        missing.append(pair)
                hits = len(pair_list) - len(missing)
                self._m_pair_hits.inc(hits)
                if missing:
                    computed = self._compute_pairs(
                        graph, cfg, events, universe, universe_fp, digest, epoch,
                        missing, on_insufficient,
                    )
                    by_pair.update(computed)
                    self._m_pair_misses.inc(len(missing))
                results = [by_pair[pair] for pair in pair_list]
                if on_insufficient == "raise":
                    for pair in results:
                        if pair.insufficient:
                            raise InsufficientSampleError(
                                f"pair ({pair.event_a!r}, {pair.event_b!r}) has only "
                                f"{pair.num_reference_nodes} reference nodes in the "
                                "shared sample"
                            )
                ranked = finalise_ranking(results, sort_by, top_k)
            finally:
                if lease is not None:
                    lease.release()
                    self._m_active_pins.dec()
            span.tags["pairs"] = len(pair_list)
            span.tags["epoch"] = epoch
        self._m_request_seconds.labels(method="rank").observe(span.duration)
        return {
            "pairs": [pair_record(pair) for pair in ranked],
            "epoch": epoch,
            "sort_by": sort_by,
            "alpha": cfg.alpha,
            "vicinity_level": cfg.vicinity_level,
            "cached_pairs": hits,
            "computed_pairs": len(missing),
        }

    def _compute_pairs(
        self,
        graph: AttributedGraph,
        cfg: TescConfig,
        events: Sequence[str],
        universe,
        universe_fp: str,
        digest: tuple,
        epoch: int,
        missing: List[Tuple[str, str]],
        on_insufficient: str,
    ) -> Dict[Tuple[str, str], RankedPair]:
        """Estimate the cache-missing pairs against ``graph`` and record them.

        Serialised by ``_miss_lock`` so concurrent identical requests
        compute the shared sample/matrix once; the cache is re-checked
        under the lock for pairs another thread just filled.  ``graph`` is
        the caller's pinned snapshot (or the live static graph), so a
        commit landing mid-computation changes nothing here.
        """
        with self._miss_lock:
            computed: Dict[Tuple[str, str], RankedPair] = {}
            still_missing: List[Tuple[str, str]] = []
            for pair in missing:
                cached = self._results.get((pair, digest, universe_fp, epoch))
                if cached is not None:
                    computed[pair] = cached
                else:
                    still_missing.append(pair)
            if computed:
                self._m_coalesced.inc(len(computed))
            if not still_missing:
                return computed

            matrix, batcher = self._matrix_for(
                graph, cfg, tuple(events), universe, universe_fp, epoch
            )
            row_of = {event: row for row, event in enumerate(events)}
            # Insufficient pairs are cached as insufficient records even in
            # "raise" mode; the caller raises after assembly, and "keep"
            # requests for the same pair still hit the cache.
            with stage("estimate", pairs=len(still_missing)):
                deadlines.checkpoint()
                fresh = None
                if (
                    self.workers > 1
                    and len(still_missing) > 1
                    and self.supervisor.allow()
                ):
                    try:
                        fresh = estimate_matrix_pairs_sharded(
                            global_pool(), matrix, row_of, still_missing, cfg,
                            "keep", self.workers,
                        )
                    except (WorkerCrashedError, OSError) as exc:
                        self.supervisor.record_failure(exc)
                        self._m_pool_fallbacks.inc()
                    else:
                        self.supervisor.record_success()
                if fresh is None:
                    fresh = estimate_pair_list(
                        still_missing, row_of, matrix, batcher, cfg, "keep"
                    )
            for pair_result in fresh:
                pair = pair_result.events
                computed[pair] = pair_result
                self._results[(pair, digest, universe_fp, epoch)] = pair_result
            while len(self._results) > self.max_cached_results:
                self._results.popitem(last=False)
            return computed

    def _matrix_for(
        self,
        graph: AttributedGraph,
        cfg: TescConfig,
        events: Tuple[str, ...],
        universe,
        universe_fp: str,
        epoch: int,
    ) -> Tuple[DensityMatrix, PairEstimateBatcher]:
        """The epoch's density matrix over the request events, cached."""
        key = (
            cfg.sampler, cfg.batch_per_vicinity,
            self._config_digest(cfg)[-1],
            universe_fp, cfg.vicinity_level, cfg.sample_size,
            cfg.kendall_kernel, cfg.kendall_crossover,
            events, epoch,
        )
        cached = self._matrices.get(key)
        if cached is not None:
            self._matrices.move_to_end(key)
            return cached
        memo = self._memo(cfg)
        with stage("sampling"):
            sample = memo.sample(
                universe, cfg.vicinity_level, cfg.sample_size,
                epoch=epoch, graph=graph,
            )
        ensure_uniform_sample(sample, cfg.sampler)
        with stage("density", workers=self.workers):
            matrix = None
            if (
                self.workers > 1
                and sample.nodes.size > 1
                and self.supervisor.allow()
            ):
                from repro.service.pool import pooled_density_matrix

                self._note_published(epoch, graph)
                try:
                    matrix, _bfs = pooled_density_matrix(
                        global_pool(), graph, sample.nodes, events,
                        cfg.vicinity_level, self.workers,
                    )
                except (WorkerCrashedError, OSError) as exc:
                    self.supervisor.record_failure(exc)
                    self._m_pool_fallbacks.inc()
                else:
                    self.supervisor.record_success()
            if matrix is None:
                computer = DensityComputer(graph.csr)
                indicators = graph.indicator_matrix(list(events))
                matrix = computer.density_matrix(
                    sample.nodes, indicators, cfg.vicinity_level
                )
        batcher = PairEstimateBatcher(
            matrix.densities,
            kernel=cfg.kendall_kernel,
            crossover=cfg.kendall_crossover,
        )
        while len(self._matrices) >= self.max_cached_matrices:
            self._matrices.popitem(last=False)
        self._matrices[key] = (matrix, batcher)
        self._m_matrices.inc()
        return matrix, batcher

    # -- topk ----------------------------------------------------------------

    def topk(
        self,
        k: int,
        pairs="all",
        sort_by: str = "score",
        config_overrides: Optional[Dict[str, Any]] = None,
        on_insufficient: str = "keep",
        at_epoch: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Progressive top-k at a pinned snapshot (whole-response cached).

        A fresh :class:`~repro.core.topk.ProgressiveTopKEngine` over the
        pinned snapshot per miss reproduces exactly what an in-process run
        at that epoch would return; the response is cached per
        ``(k, pairs, config, epoch)``.  Same epoch semantics as
        :meth:`rank`.
        """
        from repro.core.topk import ProgressiveTopKEngine

        cfg = self._merge_config(config_overrides or {})
        self._m_requests.labels(method="topk").inc()
        if self.workers > 1 and self.supervisor.degraded:
            self._m_degraded_requests.inc()
        with trace("topk", sink=self._finish_trace, k=int(k)) as span:
            epoch, graph, lease = self._pin(at_epoch)
            try:
                span.tags["epoch"] = epoch
                pair_list = resolve_pair_spec(graph.event_names(), pairs)
                key = (
                    int(k), tuple(pair_list), sort_by,
                    self._config_digest(cfg), epoch,
                )
                result = self._topk_cache.get(key)
                if result is not None:
                    self._m_topk_hits.inc()
                else:
                    with self._miss_lock:
                        result = self._topk_cache.get(key)
                        if result is not None:
                            self._m_topk_hits.inc()
                        else:
                            result = self._topk_miss(
                                graph, cfg, epoch, int(k), pair_list,
                                sort_by, on_insufficient, key,
                            )
            finally:
                if lease is not None:
                    lease.release()
                    self._m_active_pins.dec()
        self._m_request_seconds.labels(method="topk").observe(span.duration)
        return result

    def _topk_miss(
        self,
        graph: AttributedGraph,
        cfg: TescConfig,
        epoch: int,
        k: int,
        pair_list: List[Tuple[str, str]],
        sort_by: str,
        on_insufficient: str,
        key: tuple,
    ) -> Dict[str, Any]:
        """Run the progressive engine for one cache-missing top-k request.

        Caller holds ``_miss_lock`` and has re-checked the cache."""
        from repro.core.topk import ProgressiveTopKEngine

        workers = self.workers
        if workers > 1 and not self.supervisor.allow():
            workers = 1
        if workers > 1:
            self._note_published(epoch, graph)
        engine = ProgressiveTopKEngine(
            graph, cfg, workers=workers, metrics=self.metrics
        )
        try:
            try:
                ranking = engine.top_k(
                    k, pair_list, sort_by=sort_by,
                    on_insufficient=on_insufficient,
                )
            except (WorkerCrashedError, OSError) as exc:
                if workers == 1:
                    raise
                # A fresh serial engine reseeds every round from the config,
                # so the retry is bit-identical to an untroubled run.
                self.supervisor.record_failure(exc)
                self._m_pool_fallbacks.inc()
                engine.close()
                engine = ProgressiveTopKEngine(
                    graph, cfg, workers=1, metrics=self.metrics
                )
                ranking = engine.top_k(
                    k, pair_list, sort_by=sort_by,
                    on_insufficient=on_insufficient,
                )
            else:
                if workers > 1:
                    self.supervisor.record_success()
        finally:
            engine.close()
        result = {
            "pairs": [pair_record(pair) for pair in ranking],
            "epoch": epoch,
            "k": k,
            "sort_by": sort_by,
            "pairs_pruned": ranking.topk_stats.pairs_pruned,
            "pairs_survived": ranking.topk_stats.pairs_survived,
        }
        self._topk_cache[key] = result
        while len(self._topk_cache) > self.max_cached_topk:
            self._topk_cache.popitem(last=False)
        return result

    # -- stream --------------------------------------------------------------

    def _validate_batch(self, batch: DeltaBatch) -> None:
        """The same checks :meth:`DynamicAttributedGraph.apply` runs, early.

        Commit runs them *before* the write-ahead append so the WAL can
        never durably record a batch the graph would then reject — replay
        of a recovered log is therefore always clean.
        """
        num_nodes = self.graph.num_nodes
        for delta in batch.edge_deltas():
            if not (0 <= delta.u < num_nodes):
                raise NodeNotFoundError(delta.u)
            if not (0 <= delta.v < num_nodes):
                raise NodeNotFoundError(delta.v)
            if delta.u == delta.v:
                raise EdgeError(f"self-loop ({delta.u}, {delta.v}) is not allowed")
        for delta in batch.event_deltas():
            if not isinstance(delta.event, str) or not delta.event:
                raise EventError(
                    f"event name must be a non-empty string, got {delta.event!r}"
                )
            if not (0 <= delta.node < num_nodes):
                raise NodeNotFoundError(delta.node)

    def commit(self, delta_records: Sequence[Dict[str, Any]],
               rid: Optional[str] = None) -> Dict[str, Any]:
        """Apply one delta batch and report its net effect.

        Commits serialise on a plain mutex and **never wait for readers**:
        in-flight ``rank``/``topk`` calls keep computing against their
        pinned snapshots while the new epoch is published, and every later
        read admits at the bumped epoch.  A cached ``(pair, epoch)`` entry
        can therefore never be served stale — the commit that might have
        invalidated it lives at a different epoch.

        ``rid`` makes the commit idempotent: a rid already in the dedup
        table returns the recorded result (marked ``"replayed": true``)
        without touching the graph, which is what lets a client whose
        response was lost in flight retry a ``stream`` safely.  With a WAL
        attached, the batch is durably appended — CRC'd and fsynced —
        before it applies; an append failure rejects the commit with a
        retryable 503 and leaves both the log and the graph unchanged.
        """
        if not self._dynamic:
            raise BadRequestError(
                "this server is static: stream commits need a dynamic graph "
                "(construct the engine over a DynamicAttributedGraph)"
            )
        from repro.streaming.delta import Delta

        try:
            batch = DeltaBatch(
                deltas=tuple(Delta.from_record(record) for record in delta_records)
            )
        except Exception as exc:
            raise BadRequestError(f"invalid delta batch: {exc}") from exc
        self._m_requests.labels(method="commit").inc()
        with trace("commit", sink=self._finish_trace,
                   deltas=len(batch.deltas)) as span:
            with self._commit_lock:
                if rid is not None:
                    replayed = self._commit_rids.get(rid)
                    if replayed is not None:
                        self._m_commit_replays.inc()
                        result = dict(replayed)
                        result["replayed"] = True
                        span.tags["replayed"] = True
                        return result
                self._validate_batch(batch)
                if self._wal is not None:
                    with stage("wal"):
                        try:
                            self._wal.append_batch(batch)
                        except OSError as exc:
                            self._m_wal_failures.inc()
                            raise UnavailableError(
                                f"write-ahead log append failed: {exc}"
                            ) from exc
                    self._m_wal_commits.inc()
                self._m_commits.inc()
                with stage("apply"):
                    applied = self.graph.apply(batch)
                epoch = applied.epoch
                result = {
                    "epoch": epoch,
                    "structure_version": applied.structure_version,
                    "added_edges": len(applied.added_edges),
                    "removed_edges": len(applied.removed_edges),
                    "attached": len(applied.attached),
                    "detached": len(applied.detached),
                    "changed": applied.changed,
                }
                if rid is not None:
                    self._commit_rids[rid] = dict(result)
                    while len(self._commit_rids) > self._max_commit_rids:
                        self._commit_rids.popitem(last=False)
            with stage("sweep"):
                self._sweep_publications()
        self._m_commit_seconds.observe(span.duration)
        self._m_request_seconds.labels(method="commit").observe(span.duration)
        return result

    # -- checkpoints ---------------------------------------------------------

    def checkpoint(self, force: bool = False) -> Dict[str, Any]:
        """Cut one full-state checkpoint and compact the bridged WAL prefix.

        The epoch's snapshot is built *before* the commit lock is taken —
        the first pin of an epoch copies the event layer, an O(graph) job
        that must not stall commits — so the lock is held only to confirm
        the epoch did not move and to capture the WAL coordinates and
        vicinity-index columns that belong to it.  If a commit slips in
        between, the stale snapshot is dropped and rebuilt (bounded: after
        a few lost races the pin happens under the lock, accepting a
        one-off stall rather than livelocking behind a hot write stream).
        Serialisation, fsync, and the atomic rename all run against the
        leased snapshot with commits flowing freely.  A repeat call at an
        unchanged epoch is skipped unless ``force``.  After a successful
        commit, old checkpoints are pruned to the retain bound and the WAL
        is compacted only up to the oldest *retained* checkpoint's coverage,
        so every fallback candidate stays able to bridge to the surviving
        tail.  Raises :class:`~repro.service.protocol.UnavailableError`
        (previous checkpoint intact) when a write or fsync fails.
        """
        if self._store is None:
            raise BadRequestError(
                "this server has no checkpoint store (start with --store)"
            )
        with self._ckpt_lock:
            start = time.monotonic()
            lease = None
            attempts = 0
            while lease is None:
                attempts += 1
                prebuilt = self.graph.pin() if attempts <= 3 else None
                with self._commit_lock:
                    if prebuilt is not None and self.graph.epoch != prebuilt.epoch:
                        pass  # a commit landed mid-prebuild: retry below
                    else:
                        lease = (
                            prebuilt if prebuilt is not None
                            else self.graph.pin()
                        )
                        epoch = lease.epoch
                        if not force and self._last_checkpoint_epoch == epoch:
                            lease.release()
                            return {
                                "skipped": True,
                                "reason": f"epoch {epoch} already checkpointed",
                                "epoch": epoch,
                            }
                        wal_batches = (
                            self._wal.total_batches
                            if self._wal is not None else 0
                        )
                        wal_offset = (
                            self._wal.committed_offset
                            if self._wal is not None else 0
                        )
                        index = self.graph._vicinity_index
                        vicinity = (
                            index.export_sizes() if index is not None else None
                        )
                if lease is None:
                    prebuilt.release()
            try:
                state = lease.graph.checkpoint_state()
                digest = digest_string(
                    self._config_digest(self.config, persistent=True)
                )
                with trace("checkpoint", sink=self._finish_trace) as span:
                    span.tags["epoch"] = epoch
                    try:
                        info = self._store.write(
                            state,
                            config_digest=digest,
                            wal_batches=wal_batches,
                            wal_offset=wal_offset,
                            vicinity_sizes=vicinity,
                        )
                    except OSError as exc:
                        self._m_checkpoint_failures.inc()
                        raise UnavailableError(
                            f"checkpoint failed: {exc}"
                        ) from exc
            finally:
                lease.release()
            pruned = self._store.prune()
            reclaimed = 0
            if self._wal is not None:
                # Compact only the prefix every *retained* checkpoint still
                # covers: if the newest corrupts on disk later, the older
                # fallback must be able to bridge to the surviving tail —
                # recovery rejects any checkpoint that cannot.
                floor = self._store.retained_coverage()
                try:
                    if floor is not None:
                        reclaimed = self._wal.compact(
                            self._wal.offset_of_total(floor)
                        )
                except OSError as exc:
                    # The checkpoint landed; an uncompacted WAL only costs
                    # disk, and recovery handles the overlap by total batch
                    # index, so this is best-effort.
                    logger.warning(
                        "WAL compaction after %s failed: %s", info.name, exc
                    )
            duration = time.monotonic() - start
            self._last_checkpoint_epoch = epoch
            self._m_checkpoints.inc()
            self._m_checkpoint_seconds.observe(duration)
            self._m_wal_compacted.inc(reclaimed)
            return {
                "skipped": False,
                "checkpoint": info.name,
                "epoch": epoch,
                "wal_batches": wal_batches,
                "nbytes": info.nbytes,
                "reclaimed_bytes": reclaimed,
                "pruned": pruned,
                "duration_seconds": duration,
            }

    def _checkpoint_loop(self) -> None:
        while not self._ckpt_stop.wait(self.checkpoint_interval):
            try:
                self.checkpoint()
            except UnavailableError as exc:
                logger.warning("background checkpoint failed: %s", exc)
            except Exception:
                logger.exception("background checkpoint crashed")

    def record_recovery(self, report: RecoveryReport) -> None:
        """Register the boot-time recovery outcome (metrics + status)."""
        self._recovery_report = report
        self._m_recovery.labels(path=report.path).inc()
        if report.checkpoint is not None and report.replayed_batches == 0:
            # The restored epoch IS the checkpointed epoch; skip the next
            # background checkpoint until a commit moves the graph.
            self._last_checkpoint_epoch = report.restored_epoch

    # -- snapshot publication lifecycle --------------------------------------

    def _note_published(self, epoch: int, graph: AttributedGraph) -> None:
        """Record that ``graph`` (a pinned snapshot) may gain a shared-memory
        publication, so its blocks can be unlinked once the epoch retires."""
        if graph is self.graph:
            return
        with self._publish_lock:
            self._published.setdefault(int(epoch), graph)

    def _sweep_publications(self) -> None:
        """Unpublish snapshots whose epoch the lease table no longer retains."""
        if not self._dynamic or not self._published:
            return
        retained = set(self.graph.retained_epochs())
        with self._publish_lock:
            for epoch in [e for e in self._published if e not in retained]:
                unpublish_dataset(self._published.pop(epoch))

    # -- introspection / lifecycle -------------------------------------------

    def describe(self) -> Dict[str, Any]:
        """Status snapshot (epoch, versions, cache occupancy, counters)."""
        structure_version, events_version = self._graph_versions()
        payload = {
            "epoch": self.current_epoch(),
            "structure_version": structure_version,
            "events_version": events_version,
            "num_events": len(self.graph.event_names()),
            "num_nodes": self.graph.num_nodes,
            "num_edges": self.graph.num_edges,
            "workers": self.workers,
            "dynamic": self._dynamic,
            "mvcc": self._dynamic,
            "cached_pair_results": len(self._results),
            "cached_matrices": len(self._matrices),
            "cached_topk": len(self._topk_cache),
            "degraded": self.supervisor.degraded,
            "breaker": self.supervisor.describe(),
            "metrics": self.metrics.snapshot(),
        }
        if self._wal is not None:
            payload["wal"] = {
                "path": self._wal.path,
                "batches": len(self._wal.batches),
                "total_batches": self._wal.total_batches,
                "recovered_batches": self._wal.recovered_batches,
                "truncated_bytes": self._wal.truncated_bytes,
                "compacted_batches": self._wal.compacted_batches,
                "compacted_bytes": self._wal.compacted_bytes,
            }
        if self._store is not None:
            payload["storage"] = {
                "root": self._store.root,
                "checkpoints": self._store.list_checkpoints(),
                "retain": self._store.retain,
                "checkpoint_interval": self.checkpoint_interval,
                "last_checkpoint_epoch": self._last_checkpoint_epoch,
                "recovery": (
                    self._recovery_report.describe()
                    if self._recovery_report is not None else None
                ),
            }
        if self._dynamic:
            payload["retained_epochs"] = self.graph.retained_epochs()
            payload["retained_bytes"] = self.graph.retained_bytes()
        return payload

    def reference_ranking(self, pairs="all", top_k=None, sort_by="score",
                          config_overrides=None, at_epoch=None):
        """A from-scratch serial ranking at the pinned graph state.

        Test/debug helper: what a fresh
        :class:`~repro.core.batch.BatchTescEngine` over the epoch's
        snapshot returns — the baseline every service answer must match bit
        for bit.  ``at_epoch`` re-derives the oracle at any still-retained
        epoch.
        """
        cfg = self._merge_config(config_overrides or {})
        epoch, graph, lease = self._pin(at_epoch)
        try:
            return BatchTescEngine(graph, cfg).rank_pairs(
                pairs, top_k=top_k, sort_by=sort_by
            )
        finally:
            if lease is not None:
                lease.release()
                self._m_active_pins.dec()

    def close(self) -> None:
        """Drop caches and unlink this graph's shared-memory publications."""
        self._ckpt_stop.set()
        if self._ckpt_thread is not None:
            self._ckpt_thread.join(timeout=5.0)
            self._ckpt_thread = None
        with self._miss_lock:
            self._results.clear()
            self._matrices.clear()
            self._topk_cache.clear()
            self._memos.clear()
        with self._publish_lock:
            for snapshot in self._published.values():
                unpublish_dataset(snapshot)
            self._published.clear()
        unpublish_dataset(self.graph)
        if self._wal is not None:
            self._wal.close()
