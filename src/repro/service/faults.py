"""Deterministic fault-injection registry for chaos testing the service.

The service stack exposes a handful of *seams* — named points where a chaos
test can ask for a failure to happen:

* :data:`WORKER_DISPATCH` — in :meth:`PersistentWorkerPool.run_tasks`, once
  per task submitted to the pool (``kill_worker`` SIGKILLs a live worker);
* :data:`SHM_ALLOC` — in :class:`~repro.service.shm.ShmRegistry` before a
  shared-memory segment is created (``error`` raises ``OSError``);
* :data:`SOCKET_RECV` / :data:`SOCKET_SEND` — in the server's per-connection
  loop, after a request line is read / before a response is written
  (``drop`` closes the connection abruptly);
* :data:`WAL_FSYNC` — in :meth:`~repro.streaming.delta.WriteAheadLog`
  before fsync (``error`` raises ``OSError``);
* :data:`CHECKPOINT_FSYNC` — in
  :class:`~repro.storage.checkpoint.CheckpointStore` before each fsync of a
  checkpoint segment/manifest/directory (``error`` raises ``OSError``; the
  half-written temp directory is discarded and the previous checkpoint
  stays authoritative).

A :class:`FaultPlan` is a list of :class:`FaultRule`\\ s.  Each rule names a
seam, an action, and *which* invocations of that seam it fires on (1-based
``at``, for ``times`` consecutive matching invocations) — so plans read like
"kill worker 2 on task 7" or "drop the socket after the 3rd response" and
replay identically run after run.  Arming is process-global
(:func:`arm` / :func:`disarm` / the :func:`armed` context manager); with no
plan armed every seam is a single ``None`` check, cheap enough to leave in
production code paths (guarded by the CI fault-seam overhead bar).

Invocation counters live in the plan, so the same plan object must not be
armed twice without :meth:`FaultPlan.reset`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

__all__ = [
    "WORKER_DISPATCH",
    "SHM_ALLOC",
    "SOCKET_RECV",
    "SOCKET_SEND",
    "WAL_FSYNC",
    "CHECKPOINT_FSYNC",
    "KNOWN_SITES",
    "FaultRule",
    "FaultEvent",
    "FaultPlan",
    "arm",
    "disarm",
    "active",
    "armed",
    "inject",
]

WORKER_DISPATCH = "worker.dispatch"
SHM_ALLOC = "shm.alloc"
SOCKET_RECV = "socket.recv"
SOCKET_SEND = "socket.send"
WAL_FSYNC = "wal.fsync"
CHECKPOINT_FSYNC = "checkpoint.fsync"

KNOWN_SITES = frozenset(
    {WORKER_DISPATCH, SHM_ALLOC, SOCKET_RECV, SOCKET_SEND, WAL_FSYNC,
     CHECKPOINT_FSYNC}
)

#: Actions a rule may request.  ``kill_worker`` is only meaningful at
#: :data:`WORKER_DISPATCH`; ``drop`` at the socket seams; ``error`` anywhere.
ACTIONS = frozenset({"kill_worker", "drop", "error"})


@dataclass(frozen=True)
class FaultRule:
    """One deterministic failure: fire ``action`` at seam ``site``.

    ``at`` is the 1-based index of the first *matching* invocation to fire
    on; the rule keeps firing for ``times`` consecutive matching invocations
    (so ``at=3, times=1`` reads "on the 3rd call").  ``match`` narrows which
    invocations count: every key must equal the context value the seam
    passes to :func:`inject` (e.g. ``match={"method": "stream"}`` on
    :data:`SOCKET_SEND` counts only stream responses).  ``worker`` selects
    the victim for ``kill_worker`` (index into the pool's live workers,
    sorted by pid).
    """

    site: str
    action: str = "error"
    at: int = 1
    times: int = 1
    match: Mapping[str, Any] = field(default_factory=dict)
    message: str = "injected fault"
    worker: int = 0

    def __post_init__(self) -> None:
        if self.site not in KNOWN_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; expected one of "
                f"{sorted(KNOWN_SITES)}"
            )
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; expected one of "
                f"{sorted(ACTIONS)}"
            )
        if self.at < 1:
            raise ValueError("FaultRule.at is 1-based and must be >= 1")
        if self.times < 1:
            raise ValueError("FaultRule.times must be >= 1")

    def matches(self, context: Mapping[str, Any]) -> bool:
        return all(context.get(key) == value for key, value in self.match.items())


@dataclass(frozen=True)
class FaultEvent:
    """Record of one fired rule — the plan's audit trail for assertions."""

    site: str
    action: str
    invocation: int
    context: Tuple[Tuple[str, Any], ...]


class FaultPlan:
    """An armed set of rules with thread-safe deterministic counters."""

    def __init__(self, *rules: FaultRule) -> None:
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self._lock = threading.Lock()
        self._site_counts: Dict[str, int] = {}
        self._rule_counts: Dict[int, int] = {}
        self.fired: List[FaultEvent] = []

    def reset(self) -> None:
        with self._lock:
            self._site_counts.clear()
            self._rule_counts.clear()
            self.fired.clear()

    def invocations(self, site: str) -> int:
        with self._lock:
            return self._site_counts.get(site, 0)

    def fired_at(self, site: str) -> List[FaultEvent]:
        with self._lock:
            return [event for event in self.fired if event.site == site]

    def fire(self, site: str, context: Mapping[str, Any]) -> Optional[FaultRule]:
        """Count this invocation and return the rule to apply, if any.

        Every rule whose ``match`` accepts the invocation advances its own
        counter; at most one rule fires (the first in declaration order
        whose window contains its count), so "kill on task 3" and "kill on
        task 7" coexist in one plan.
        """
        with self._lock:
            self._site_counts[site] = self._site_counts.get(site, 0) + 1
            winner: Optional[FaultRule] = None
            for index, rule in enumerate(self.rules):
                if rule.site != site or not rule.matches(context):
                    continue
                count = self._rule_counts.get(index, 0) + 1
                self._rule_counts[index] = count
                if winner is None and rule.at <= count < rule.at + rule.times:
                    winner = rule
                    self.fired.append(
                        FaultEvent(
                            site=site,
                            action=rule.action,
                            invocation=count,
                            context=tuple(sorted(context.items())),
                        )
                    )
            return winner


_ACTIVE: Optional[FaultPlan] = None


def arm(plan: FaultPlan) -> FaultPlan:
    """Arm ``plan`` process-wide (replacing any previous plan)."""
    global _ACTIVE
    _ACTIVE = plan
    return plan


def disarm() -> None:
    global _ACTIVE
    _ACTIVE = None


def active() -> Optional[FaultPlan]:
    return _ACTIVE


@contextmanager
def armed(*rules: FaultRule) -> Iterator[FaultPlan]:
    """``with faults.armed(FaultRule(...)) as plan:`` — disarms on exit."""
    plan = arm(FaultPlan(*rules))
    try:
        yield plan
    finally:
        disarm()


def inject(site: str, **context: Any) -> Optional[FaultRule]:
    """Seam entry point: returns the rule to apply, or ``None``.

    This is the no-op fast path — with nothing armed it is one global read
    and a ``None`` test.  Seams late-bind it (``faults.inject(...)``) so the
    benchmark guard can patch it out to measure the seams' cost.
    """
    plan = _ACTIVE
    if plan is None:
        return None
    return plan.fire(site, context)
