"""Thin blocking client of the correlation service.

:class:`CorrelationClient` keeps one persistent connection, correlates
responses by request id, and maps protocol error codes back onto the
exception classes of :mod:`repro.service.protocol` — a 429 raises
:class:`~repro.service.protocol.OverloadedError` on the caller, never a
hang.  Safe for concurrent use from multiple threads (requests serialise on
an internal lock); for true request parallelism open one client per thread —
connections are cheap, all heavy state is server-side.

Protocol v2 aware: every response's ``proto`` major version is checked (a
newer-than-supported server raises
:class:`~repro.service.protocol.RemoteError`), and the epoch stamped on the
latest successful response is tracked as :attr:`CorrelationClient.last_epoch`
— the handle for read-your-writes: commit, then ``rank(at_epoch=
client.last_epoch)`` to read exactly the state that commit produced.
"""

from __future__ import annotations

import socket
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.service.protocol import (
    RemoteError,
    check_proto,
    decode_line,
    encode,
    raise_for_error,
)


class CorrelationClient:
    """Blocking JSON-line client of one :class:`CorrelationServer`.

    Parameters
    ----------
    host / port:
        The server address (``*server.address`` after ``server.start()``).
    timeout:
        Socket timeout in seconds for connect and for each response.

    Usable as a context manager; :meth:`close` is idempotent.
    """

    def __init__(self, host: str, port: int, timeout: Optional[float] = 60.0) -> None:
        self._socket = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._socket.makefile("rb")
        self._lock = threading.Lock()
        self._next_id = 0
        self._closed = False
        self._last_epoch: Optional[int] = None
        self._last_proto: Optional[int] = None

    @property
    def last_epoch(self) -> Optional[int]:
        """Epoch stamped on the most recent successful response.

        ``None`` until an epoch-bound response arrives.  After a
        :meth:`stream` commit this is the commit's epoch; pass it as
        ``at_epoch`` to :meth:`rank`/:meth:`topk` for read-your-writes
        semantics regardless of interleaved commits from other clients.
        """
        return self._last_epoch

    @property
    def server_proto(self) -> Optional[int]:
        """Protocol major version of the most recent response (None = none yet)."""
        return self._last_proto

    # -- plumbing ------------------------------------------------------------

    def request(self, method: str, params: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """One round-trip: send ``method``/``params``, return the result.

        Raises the mapped :class:`~repro.service.protocol.ServiceError`
        subclass on error responses, :class:`RemoteError` on a dead or
        mismatched connection.
        """
        with self._lock:
            if self._closed:
                raise RemoteError("client is closed")
            self._next_id += 1
            request_id = self._next_id
            try:
                self._socket.sendall(
                    encode({"id": request_id, "method": method, "params": params or {}})
                )
                line = self._reader.readline()
            except OSError as exc:
                raise RemoteError(f"connection to server lost: {exc}") from exc
            if not line:
                raise RemoteError("server closed the connection")
            response = decode_line(line)
            if response.get("id") != request_id:
                raise RemoteError(
                    f"response id {response.get('id')!r} does not match "
                    f"request id {request_id!r}"
                )
            result = raise_for_error(response)
            self._last_proto = check_proto(response)
            epoch = response.get("epoch")
            if epoch is not None:
                self._last_epoch = int(epoch)
        return result

    def close(self) -> None:
        """Close the connection (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._reader.close()
            except OSError:  # pragma: no cover - already gone
                pass
            try:
                self._socket.close()
            except OSError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "CorrelationClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- the service methods -------------------------------------------------

    def ping(self) -> bool:
        """Liveness check (never gated by admission control)."""
        return bool(self.request("ping").get("pong"))

    def status(self) -> Dict[str, Any]:
        """Server status: epoch, versions, cache occupancy, admission state."""
        return self.request("status")

    def rank(
        self,
        pairs: Any = "all",
        top_k: Optional[int] = None,
        sort_by: str = "score",
        config: Optional[Dict[str, Any]] = None,
        on_insufficient: str = "keep",
        at_epoch: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Rank event pairs; the result's ``"pairs"`` list is bit-identical
        to the serial in-process engine's ``as_records()`` at the answering
        epoch.  ``at_epoch`` pins a still-retained historical snapshot."""
        params: Dict[str, Any] = {
            "pairs": self._wire_pairs(pairs),
            "sort_by": sort_by,
            "on_insufficient": on_insufficient,
        }
        if top_k is not None:
            params["top_k"] = int(top_k)
        if config:
            params["config"] = config
        if at_epoch is not None:
            params["at_epoch"] = int(at_epoch)
        return self.request("rank", params)

    def topk(
        self,
        k: int,
        pairs: Any = "all",
        sort_by: str = "score",
        config: Optional[Dict[str, Any]] = None,
        on_insufficient: str = "keep",
        at_epoch: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Progressive top-k ranking at the pinned (default: current) epoch."""
        params: Dict[str, Any] = {
            "k": int(k),
            "pairs": self._wire_pairs(pairs),
            "sort_by": sort_by,
            "on_insufficient": on_insufficient,
        }
        if config:
            params["config"] = config
        if at_epoch is not None:
            params["at_epoch"] = int(at_epoch)
        return self.request("topk", params)

    def stream(self, deltas: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
        """Commit one batch of delta records; returns the new epoch."""
        return self.request("stream", {"deltas": list(deltas)})

    def metrics(self, traces: int = 0) -> Dict[str, Any]:
        """The server's metrics registry: snapshot dict + Prometheus text.

        Ungated like ``ping``/``status``, so it answers under overload.
        ``traces`` > 0 additionally returns that many recent request span
        trees from the server's trace buffer.
        """
        params = {"traces": int(traces)} if traces else None
        return self.request("metrics", params)

    def shutdown(self) -> Dict[str, Any]:
        """Ask the server to stop (acknowledged before it tears down)."""
        return self.request("shutdown")

    @staticmethod
    def _wire_pairs(pairs: Any) -> Any:
        if pairs is None or (isinstance(pairs, str) and pairs == "all"):
            return "all"
        return [list(pair) for pair in pairs]


def rank_records(result: Dict[str, Any]) -> List[Tuple]:
    """A rank response's pairs as comparable tuples (test convenience)."""
    return [
        (
            record["rank"], record["event_a"], record["event_b"],
            record["score"], record["z_score"], record["p_value"],
            record["verdict"], record["num_reference_nodes"],
        )
        for record in result["pairs"]
    ]
