"""Thin blocking client of the correlation service.

:class:`CorrelationClient` keeps one persistent connection, correlates
responses by request id, and maps protocol error codes back onto the
exception classes of :mod:`repro.service.protocol` — a 429 raises
:class:`~repro.service.protocol.OverloadedError` on the caller, never a
hang.  Safe for concurrent use from multiple threads (requests serialise on
an internal lock); for true request parallelism open one client per thread —
connections are cheap, all heavy state is server-side.

Protocol v3 aware: every request carries a client-generated idempotency key
(``rid``) and, when the caller budgets one, a relative ``deadline`` the
server enforces end to end.  With ``max_retries > 0`` the client becomes
self-healing: retryable failures (429/408/503 and lost connections — never
400 or 500) are retried with exponential backoff and jitter, reconnecting
transparently when the socket dies.  Because the *same* rid is re-sent on
every attempt of one logical request, a retried commit whose first response
was lost in flight is deduplicated server-side instead of applied twice.

The epoch stamped on the latest successful response is tracked as
:attr:`CorrelationClient.last_epoch` — the handle for read-your-writes:
commit, then ``rank(at_epoch=client.last_epoch)`` to read exactly the state
that commit produced.
"""

from __future__ import annotations

import random
import socket
import threading
import time
import uuid
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.service.protocol import (
    ConnectionLostError,
    RemoteError,
    RequestTimeoutError,
    ServiceError,
    check_proto,
    decode_line,
    encode,
    raise_for_error,
)


@dataclass
class RetryStats:
    """Lifetime retry counters of one :class:`CorrelationClient`."""

    attempts: int = 0
    retries: int = 0
    reconnects: int = 0
    backoff_seconds: float = 0.0


class CorrelationClient:
    """Blocking JSON-line client of one :class:`CorrelationServer`.

    Parameters
    ----------
    host / port:
        The server address (``*server.address`` after ``server.start()``).
    timeout:
        Socket timeout in seconds for connect and for each response.
    max_retries:
        How many times a *retryable* failure may be retried per logical
        request (0 — the default — preserves the classic raise-on-first-error
        behaviour).  Only errors the server marks retryable (429, 408, 503)
        and lost connections are retried; a 400 or 500 always surfaces on
        the first attempt.
    backoff_base / backoff_max:
        Exponential backoff schedule: retry ``n`` sleeps
        ``min(backoff_max, backoff_base * 2**(n-1))`` scaled by jitter.  A
        server-supplied ``retry_after`` hint raises the floor of a sleep.
    retry_seed:
        Seed for the jitter PRNG (deterministic backoff in tests).

    Usable as a context manager; :meth:`close` is idempotent and tolerates a
    connection that already died under it.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: Optional[float] = 60.0,
        max_retries: int = 0,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        retry_seed: Optional[int] = None,
    ) -> None:
        self._host = host
        self._port = port
        self._timeout = timeout
        self.max_retries = max(0, int(max_retries))
        self.backoff_base = float(backoff_base)
        self.backoff_max = float(backoff_max)
        self._random = random.Random(retry_seed)
        self._lock = threading.Lock()
        self._next_id = 0
        self._closed = False
        self._last_epoch: Optional[int] = None
        self._last_proto: Optional[int] = None
        self._rid_prefix = uuid.uuid4().hex[:12]
        self._rid_counter = 0
        self.retry_stats = RetryStats()
        self._socket: Optional[socket.socket] = None
        self._reader = None
        self._connect()

    @property
    def last_epoch(self) -> Optional[int]:
        """Epoch stamped on the most recent successful response.

        ``None`` until an epoch-bound response arrives.  After a
        :meth:`stream` commit this is the commit's epoch; pass it as
        ``at_epoch`` to :meth:`rank`/:meth:`topk` for read-your-writes
        semantics regardless of interleaved commits from other clients.
        """
        return self._last_epoch

    @property
    def server_proto(self) -> Optional[int]:
        """Protocol major version of the most recent response (None = none yet)."""
        return self._last_proto

    # -- plumbing ------------------------------------------------------------

    def _connect(self) -> None:
        """(Re)establish the connection.  Caller holds the lock (or is __init__)."""
        self._teardown_socket()
        self._socket = socket.create_connection(
            (self._host, self._port), timeout=self._timeout
        )
        self._reader = self._socket.makefile("rb")

    def _teardown_socket(self) -> None:
        for closer in (self._reader, self._socket):
            if closer is None:
                continue
            try:
                closer.close()
            except (OSError, ValueError):  # pragma: no cover - already gone
                pass
        self._reader = None
        self._socket = None

    def _next_rid(self) -> str:
        self._rid_counter += 1
        return f"{self._rid_prefix}-{self._rid_counter}"

    def _round_trip(
        self,
        method: str,
        params: Dict[str, Any],
        rid: str,
        deadline_at: Optional[float],
        timeout: Optional[float],
    ) -> Dict[str, Any]:
        """One wire attempt.  Caller holds the lock.

        Any transport-level failure (send/recv error, EOF, socket timeout)
        is normalised to :class:`ConnectionLostError` and the socket is torn
        down, so the next attempt reconnects.
        """
        if self._socket is None:
            self.retry_stats.reconnects += 1
            self._connect()
        self._next_id += 1
        request_id = self._next_id
        envelope: Dict[str, Any] = {
            "id": request_id,
            "method": method,
            "params": params,
            "rid": rid,
        }
        if deadline_at is not None:
            remaining = deadline_at - time.monotonic()
            if remaining <= 0:
                raise RequestTimeoutError(
                    f"request deadline expired before sending {method!r}"
                )
            envelope["deadline"] = remaining
        restore_timeout = False
        try:
            if timeout is not None:
                # Per-call override; the client default is restored in the
                # finally (after a transport error the teardown closes the
                # socket anyway, so a missed restore cannot leak).
                self._socket.settimeout(timeout)
                restore_timeout = True
            self._socket.sendall(encode(envelope))
            line = self._reader.readline()
        except socket.timeout as exc:
            self._teardown_socket()
            raise ConnectionLostError(
                f"timed out waiting for a response to {method!r}: {exc}"
            ) from exc
        except OSError as exc:
            self._teardown_socket()
            raise ConnectionLostError(f"connection to server lost: {exc}") from exc
        finally:
            if restore_timeout and self._socket is not None:
                try:
                    self._socket.settimeout(self._timeout)
                except OSError:  # pragma: no cover - socket died mid-restore
                    pass
        if not line:
            self._teardown_socket()
            raise ConnectionLostError("server closed the connection")
        response = decode_line(line)
        if response.get("id") != request_id:
            self._teardown_socket()
            raise ConnectionLostError(
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id!r}"
            )
        result = raise_for_error(response)
        self._last_proto = check_proto(response)
        epoch = response.get("epoch")
        if epoch is not None:
            self._last_epoch = int(epoch)
        return result

    def _backoff_for(self, retry_number: int, error: Exception) -> float:
        """Sleep duration before retry ``retry_number`` (1-based)."""
        sleep = min(self.backoff_max, self.backoff_base * (2 ** (retry_number - 1)))
        sleep *= 0.5 + self._random.random()  # jitter in [0.5x, 1.5x)
        hint = getattr(error, "retry_after", None)
        if hint is not None:
            sleep = max(sleep, float(hint))
        return sleep

    def request(
        self,
        method: str,
        params: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
        max_retries: Optional[int] = None,
    ) -> Dict[str, Any]:
        """One logical request: send ``method``/``params``, return the result.

        Parameters
        ----------
        timeout:
            Per-call socket timeout override, in seconds; the client default
            is restored afterwards.
        deadline:
            End-to-end budget for the logical request, in seconds.  It is
            forwarded to the server (which aborts work past it with a 408)
            and bounds the retry loop client-side: retries stop, and backoff
            sleeps are clipped, once the budget is spent.
        max_retries:
            Per-call override of the client-wide retry allowance.

        All attempts of one logical request share one ``rid``, so the server
        deduplicates a commit whose first response was lost in flight.
        Raises the mapped :class:`~repro.service.protocol.ServiceError`
        subclass on error responses; :class:`ConnectionLostError` on a dead
        connection once retries (if any) are exhausted.
        """
        retries_allowed = (
            self.max_retries if max_retries is None else max(0, int(max_retries))
        )
        deadline_at = None if deadline is None else time.monotonic() + deadline
        with self._lock:
            if self._closed:
                raise RemoteError("client is closed")
            rid = self._next_rid()
            wire_params = params or {}
            failures = 0
            while True:
                self.retry_stats.attempts += 1
                try:
                    return self._round_trip(
                        method, wire_params, rid, deadline_at, timeout
                    )
                except ServiceError as exc:
                    retryable = isinstance(exc, ConnectionLostError) or getattr(
                        exc, "retryable", False
                    )
                    failures += 1
                    if not retryable or failures > retries_allowed:
                        raise
                    sleep = self._backoff_for(failures, exc)
                    if deadline_at is not None:
                        remaining = deadline_at - time.monotonic()
                        if remaining <= 0:
                            raise
                        sleep = min(sleep, remaining)
                    self.retry_stats.retries += 1
                    self.retry_stats.backoff_seconds += sleep
                    if sleep > 0:
                        time.sleep(sleep)

    def close(self) -> None:
        """Close the connection (idempotent, tolerant of a dead socket)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._teardown_socket()

    def __enter__(self) -> "CorrelationClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- the service methods -------------------------------------------------

    def ping(self) -> bool:
        """Liveness check (never gated by admission control)."""
        return bool(self.request("ping").get("pong"))

    def status(self) -> Dict[str, Any]:
        """Server status: epoch, versions, cache occupancy, admission state."""
        return self.request("status")

    def rank(
        self,
        pairs: Any = "all",
        top_k: Optional[int] = None,
        sort_by: str = "score",
        config: Optional[Dict[str, Any]] = None,
        on_insufficient: str = "keep",
        at_epoch: Optional[int] = None,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Rank event pairs; the result's ``"pairs"`` list is bit-identical
        to the serial in-process engine's ``as_records()`` at the answering
        epoch.  ``at_epoch`` pins a still-retained historical snapshot."""
        params: Dict[str, Any] = {
            "pairs": self._wire_pairs(pairs),
            "sort_by": sort_by,
            "on_insufficient": on_insufficient,
        }
        if top_k is not None:
            params["top_k"] = int(top_k)
        if config:
            params["config"] = config
        if at_epoch is not None:
            params["at_epoch"] = int(at_epoch)
        return self.request("rank", params, timeout=timeout, deadline=deadline)

    def topk(
        self,
        k: int,
        pairs: Any = "all",
        sort_by: str = "score",
        config: Optional[Dict[str, Any]] = None,
        on_insufficient: str = "keep",
        at_epoch: Optional[int] = None,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Progressive top-k ranking at the pinned (default: current) epoch."""
        params: Dict[str, Any] = {
            "k": int(k),
            "pairs": self._wire_pairs(pairs),
            "sort_by": sort_by,
            "on_insufficient": on_insufficient,
        }
        if config:
            params["config"] = config
        if at_epoch is not None:
            params["at_epoch"] = int(at_epoch)
        return self.request("topk", params, timeout=timeout, deadline=deadline)

    def stream(
        self,
        deltas: Sequence[Dict[str, Any]],
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Commit one batch of delta records; returns the new epoch.

        Safe to retry: the batch's rid deduplicates a re-sent commit whose
        first response was dropped, so the epoch advances exactly once.
        """
        return self.request(
            "stream", {"deltas": list(deltas)}, timeout=timeout, deadline=deadline
        )

    def metrics(self, traces: int = 0) -> Dict[str, Any]:
        """The server's metrics registry: snapshot dict + Prometheus text.

        Ungated like ``ping``/``status``, so it answers under overload.
        ``traces`` > 0 additionally returns that many recent request span
        trees from the server's trace buffer.
        """
        params = {"traces": int(traces)} if traces else None
        return self.request("metrics", params)

    def checkpoint(self, force: bool = False) -> Dict[str, Any]:
        """Ask the server to cut a checkpoint now (needs ``--store``).

        Ungated like ``ping``/``status`` — the checkpoint runs off the
        commit path against a leased snapshot.  A repeat call at an
        unchanged epoch is reported as ``{"skipped": true}`` unless
        ``force``.
        """
        params = {"force": True} if force else None
        return self.request("checkpoint", params)

    def shutdown(self) -> Dict[str, Any]:
        """Ask the server to stop (acknowledged before it tears down)."""
        return self.request("shutdown")

    @staticmethod
    def _wire_pairs(pairs: Any) -> Any:
        if pairs is None or (isinstance(pairs, str) and pairs == "all"):
            return "all"
        return [list(pair) for pair in pairs]


def rank_records(result: Dict[str, Any]) -> List[Tuple]:
    """A rank response's pairs as comparable tuples (test convenience)."""
    return [
        (
            record["rank"], record["event_a"], record["event_b"],
            record["score"], record["z_score"], record["p_value"],
            record["verdict"], record["num_reference_nodes"],
        )
        for record in result["pairs"]
    ]
