"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. **Density vs hitting-time proximity** — the paper chooses the simple
   vicinity-density measure over hitting time for efficiency (Section 5.3);
   this ablation measures both on the same pair so the cost gap is visible.
2. **Sample size** — the paper argues n=900 suffices because Var(t) is
   bounded by 2(1-τ²)/n regardless of N; the sweep shows the z-score of a
   planted pair stabilising as n grows.
3. **Batched importance sampling** — cost vs batch size, the efficiency side
   of the Figure 7 accuracy trade-off.
4. **Tie correction** — Eq. 6 vs the uncorrected Eq. 5 on tie-heavy density
   vectors, quantifying how much the correction changes the z-score.
"""

import numpy as np
import pytest

from repro.baselines.hitting_time import hitting_time_affinity
from repro.core.config import TescConfig
from repro.core.tesc import TescTester
from repro.core.estimators import plain_estimate
from repro.datasets.synthetic_dblp import make_dblp_like
from repro.stats.kendall import pair_concordance_sum
from repro.stats.ties import null_variance_no_ties

DATASET = make_dblp_like(
    num_communities=16, community_size=100, num_positive_pairs=1, num_negative_pairs=1,
    num_background_keywords=0, random_state=71,
)
EVENT_A, EVENT_B = DATASET.positive_pairs[0]


def test_ablation_density_measure(benchmark):
    """TESC with the paper's density measure (the chosen design)."""
    tester = TescTester(DATASET.attributed, TescConfig(sample_size=300, random_state=1))
    result = benchmark.pedantic(lambda: tester.test(EVENT_A, EVENT_B), rounds=3, iterations=1)
    print(f"\ndensity-based TESC: z={result.z_score:+.2f}")


def test_ablation_hitting_time_measure(benchmark):
    """The hitting-time affinity alternative the paper rejects on cost grounds."""
    result = benchmark.pedantic(
        lambda: hitting_time_affinity(
            DATASET.attributed, EVENT_A, EVENT_B,
            max_steps=3, walks_per_source=10, max_sources=300, random_state=1,
        ),
        rounds=3,
        iterations=1,
    )
    print(f"\nhitting-time affinity: {result:.4f} (no significance available)")


@pytest.mark.parametrize("sample_size", [100, 300, 900])
def test_ablation_sample_size(benchmark, sample_size):
    """z-score stability as the reference sample grows (Section 3.1 bound)."""
    tester = TescTester(
        DATASET.attributed, TescConfig(sample_size=sample_size, random_state=2)
    )
    result = benchmark.pedantic(lambda: tester.test(EVENT_A, EVENT_B), rounds=2, iterations=1)
    print(f"\nn={sample_size}: z={result.z_score:+.2f}")


@pytest.mark.parametrize("batch_per_vicinity", [1, 5, 20])
def test_ablation_batched_importance_cost(benchmark, batch_per_vicinity):
    """Sampling cost as more reference nodes are drawn per event vicinity."""
    tester = TescTester(
        DATASET.attributed,
        TescConfig(
            sampler="importance",
            batch_per_vicinity=batch_per_vicinity,
            sample_size=300,
            random_state=3,
        ),
    )
    result = benchmark.pedantic(lambda: tester.test(EVENT_A, EVENT_B), rounds=2, iterations=1)
    print(
        f"\nbatch={batch_per_vicinity}: z={result.z_score:+.2f}, "
        f"bfs_calls={result.sample.cost.bfs_calls}"
    )


def test_ablation_tie_correction(benchmark):
    """Eq. 6 tie-corrected z versus the naive Eq. 5 z on tie-heavy densities."""
    rng = np.random.default_rng(5)
    # Density vectors with many zeros, as produced by sparse events.
    densities_a = np.where(rng.random(400) < 0.7, 0.0, rng.random(400))
    densities_b = np.where(rng.random(400) < 0.7, 0.0, rng.random(400))

    def compute():
        corrected = plain_estimate(densities_a, densities_b)
        s = pair_concordance_sum(densities_a, densities_b)
        n = len(densities_a)
        naive_sigma = np.sqrt(null_variance_no_ties(n)) * (0.5 * n * (n - 1))
        return corrected.z_score, s / naive_sigma

    corrected_z, naive_z = benchmark(compute)
    print(f"\ntie-corrected z={corrected_z:+.2f} vs uncorrected z={naive_z:+.2f}")
