"""Benchmark/reproduction of Table 3 (1-hop positive alert pairs, Intrusion)."""

from repro.experiments import Table3Config

from .conftest import run_and_report

CONFIG = Table3Config(num_subnets=120, subnet_size=40, num_pairs=5, sample_size=400)


def test_table3_positive_alert_pairs(benchmark):
    run_and_report(benchmark, "table3", CONFIG)
