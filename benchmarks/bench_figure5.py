"""Benchmark/reproduction of Figure 5 (positive-pair recall vs noise)."""

from repro.experiments import Figure5Config

from .conftest import run_and_report

#: Reproduction-scale configuration: large enough to show the recall curves'
#: shape, small enough for a laptop/CI run.  Paper scale: DBLP graph,
#: event_size=5000, num_pairs=100, sample_size=900.
CONFIG = Figure5Config(
    num_communities=12,
    community_size=100,
    event_size=200,
    num_pairs=4,
    sample_size=200,
    noise_grids={1: (0.0, 0.1, 0.3), 2: (0.0, 0.1, 0.3), 3: (0.0, 0.4, 0.7)},
)


def test_figure5_positive_recall_curves(benchmark):
    run_and_report(benchmark, "figure5", CONFIG)
