"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures through the
experiment harness in :mod:`repro.experiments` and prints the resulting rows,
so running ``pytest benchmarks/ --benchmark-only`` reproduces the evaluation
section end to end (at reproduction scale).  The printed tables are the
artifact; the benchmark timings additionally record how long each experiment
takes to regenerate.
"""

from __future__ import annotations

import pytest


def run_and_report(benchmark, experiment_id: str, config) -> None:
    """Run one experiment under pytest-benchmark and print its tables."""
    from repro.experiments.runner import run_experiment

    result = benchmark.pedantic(
        lambda: run_experiment(experiment_id, config), rounds=1, iterations=1
    )
    print()
    print(result.render())


@pytest.fixture
def report(benchmark):
    """Fixture form of :func:`run_and_report`."""

    def _run(experiment_id: str, config):
        return run_and_report(benchmark, experiment_id, config)

    return _run
