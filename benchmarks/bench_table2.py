"""Benchmark/reproduction of Table 2 (3-hop negative keyword pairs, DBLP)."""

from repro.experiments import Table2Config

from .conftest import run_and_report

CONFIG = Table2Config(num_communities=24, community_size=120, num_pairs=5, sample_size=400)


def test_table2_negative_keyword_pairs(benchmark):
    run_and_report(benchmark, "table2", CONFIG)
