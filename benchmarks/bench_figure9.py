"""Benchmark/reproduction of Figure 9 (sampler running time vs |Va∪b|)."""

from repro.experiments import Figure9Config

from .conftest import run_and_report

#: Paper scale: 20M-node Twitter graph, |Va∪b| up to 500k.  The reproduction
#: sweeps the same shape on a 20k-node scale-free graph.
CONFIG = Figure9Config(
    num_nodes=20_000,
    event_set_sizes=(500, 2_000, 5_000, 10_000),
    levels=(1, 2, 3),
    sample_size=300,
    repetitions=2,
)


def test_figure9_sampler_running_time(benchmark):
    run_and_report(benchmark, "figure9", CONFIG)
