"""Benchmark/reproduction of Figure 8 (impact of graph density)."""

from repro.experiments import Figure8Config

from .conftest import run_and_report

CONFIG = Figure8Config(
    num_communities=12,
    community_size=100,
    event_size=200,
    num_pairs=4,
    sample_size=200,
    removal_fractions=(0.0, 0.3, 0.6, 0.9),
    addition_fractions=(0.0, 2.0, 5.0, 10.0),
)


def test_figure8_graph_density_impact(benchmark):
    run_and_report(benchmark, "figure8", CONFIG)
