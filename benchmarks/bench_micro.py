"""Micro-benchmarks of the framework's primitive operations.

These isolate the three phases analysed in Section 4.4 — reference-node
sampling, event-density computation (one h-hop BFS per reference node) and
the measure/z-score computation — so regressions in any phase are visible
independently of the full experiments.
"""

import numpy as np
import pytest

from repro.core.estimators import plain_estimate
from repro.datasets.synthetic_twitter import make_twitter_like
from repro.graph.traversal import BFSEngine
from repro.graph.vicinity import VicinityIndex
from repro.sampling.registry import create_sampler

GRAPH = make_twitter_like(num_nodes=20_000, edges_per_node=8, random_state=1)
EVENT_NODES = np.random.default_rng(2).choice(GRAPH.num_nodes, size=5_000, replace=False)
VICINITY_INDEX = VicinityIndex(GRAPH, levels=(1, 2), lazy=True)


@pytest.mark.parametrize("level", [1, 2, 3])
def test_single_bfs(benchmark, level):
    """Figure 10a primitive: one h-hop BFS on a scale-free graph."""
    engine = BFSEngine(GRAPH)
    rng = np.random.default_rng(3)
    sources = rng.choice(GRAPH.num_nodes, size=64)
    counter = {"i": 0}

    def run():
        source = int(sources[counter["i"] % len(sources)])
        counter["i"] += 1
        return engine.vicinity(source, level)

    benchmark(run)


def test_batch_bfs_over_event_nodes(benchmark):
    """Algorithm 1 on a 5k-node event set (the Figure 9 x-axis midpoint)."""
    engine = BFSEngine(GRAPH)
    benchmark(lambda: engine.multi_source_vicinity(EVENT_NODES, 1))


@pytest.mark.parametrize("sample_size", [300, 900])
def test_zscore_computation(benchmark, sample_size):
    """Figure 10b primitive: the O(n^2) measure computation."""
    rng = np.random.default_rng(4)
    densities_a = rng.random(sample_size)
    densities_b = rng.random(sample_size)
    benchmark(lambda: plain_estimate(densities_a, densities_b))


@pytest.mark.parametrize("sampler_name", ["batch_bfs", "importance", "whole_graph"])
def test_reference_sampling(benchmark, sampler_name):
    """One reference-node sample of n=300 at h=1 per sampler."""
    sampler = create_sampler(
        sampler_name, GRAPH, vicinity_index=VICINITY_INDEX, random_state=5
    )
    benchmark.pedantic(
        lambda: sampler.sample(EVENT_NODES, 1, 300), rounds=3, iterations=1
    )
