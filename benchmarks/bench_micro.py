"""Micro-benchmarks of the framework's primitive operations.

These isolate the three phases analysed in Section 4.4 — reference-node
sampling, event-density computation (one h-hop BFS per reference node) and
the measure/z-score computation — so regressions in any phase are visible
independently of the full experiments.
"""

import time

import numpy as np
import pytest

from repro.core.batch import BatchTescEngine
from repro.core.config import TescConfig
from repro.core.estimators import plain_estimate
from repro.core.tesc import TescTester
from repro.datasets.synthetic_dblp import make_dblp_like
from repro.datasets.synthetic_twitter import make_twitter_like
from repro.graph.traversal import BFSEngine
from repro.graph.vicinity import VicinityIndex
from repro.sampling.registry import create_sampler

GRAPH = make_twitter_like(num_nodes=20_000, edges_per_node=8, random_state=1)
EVENT_NODES = np.random.default_rng(2).choice(GRAPH.num_nodes, size=5_000, replace=False)
VICINITY_INDEX = VicinityIndex(GRAPH, levels=(1, 2), lazy=True)

# A DBLP-like workload for the batch-vs-loop comparison: 15 keyword pairs
# tested on one graph, the shape of the paper's Tables 1-5 runs.
RANK_DATASET = make_dblp_like(
    num_communities=16, community_size=80, num_positive_pairs=5,
    num_negative_pairs=5, num_background_keywords=10, random_state=13,
)
RANK_PAIRS = (
    list(RANK_DATASET.positive_pairs)
    + list(RANK_DATASET.negative_pairs)
    + [("bg_0", "bg_1"), ("bg_2", "bg_3"), ("bg_4", "bg_5"),
       ("bg_6", "bg_7"), ("bg_8", "bg_9")]
)
RANK_CONFIG = TescConfig(vicinity_level=1, sample_size=300, random_state=17)


@pytest.mark.parametrize("level", [1, 2, 3])
def test_single_bfs(benchmark, level):
    """Figure 10a primitive: one h-hop BFS on a scale-free graph."""
    engine = BFSEngine(GRAPH)
    rng = np.random.default_rng(3)
    sources = rng.choice(GRAPH.num_nodes, size=64)
    counter = {"i": 0}

    def run():
        source = int(sources[counter["i"] % len(sources)])
        counter["i"] += 1
        return engine.vicinity(source, level)

    benchmark(run)


def test_batch_bfs_over_event_nodes(benchmark):
    """Algorithm 1 on a 5k-node event set (the Figure 9 x-axis midpoint)."""
    engine = BFSEngine(GRAPH)
    benchmark(lambda: engine.multi_source_vicinity(EVENT_NODES, 1))


@pytest.mark.parametrize("sample_size", [300, 900])
def test_zscore_computation(benchmark, sample_size):
    """Figure 10b primitive: the O(n^2) measure computation."""
    rng = np.random.default_rng(4)
    densities_a = rng.random(sample_size)
    densities_b = rng.random(sample_size)
    benchmark(lambda: plain_estimate(densities_a, densities_b))


@pytest.mark.parametrize("sampler_name", ["batch_bfs", "importance", "whole_graph"])
def test_reference_sampling(benchmark, sampler_name):
    """One reference-node sample of n=300 at h=1 per sampler."""
    sampler = create_sampler(
        sampler_name, GRAPH, vicinity_index=VICINITY_INDEX, random_state=5
    )
    benchmark.pedantic(
        lambda: sampler.sample(EVENT_NODES, 1, 300), rounds=3, iterations=1
    )


def _rank_with_loop():
    tester = TescTester(RANK_DATASET.attributed, RANK_CONFIG)
    return [tester.test(event_a, event_b) for event_a, event_b in RANK_PAIRS]


def _rank_with_batch_engine():
    engine = BatchTescEngine(RANK_DATASET.attributed, RANK_CONFIG)
    return engine.rank_pairs(RANK_PAIRS)


def test_rank_pairs_per_pair_loop(benchmark):
    """Baseline: 15 keyword pairs through per-pair TescTester.test."""
    results = benchmark.pedantic(_rank_with_loop, rounds=3, iterations=1)
    assert len(results) == len(RANK_PAIRS)


def test_rank_pairs_batch_engine(benchmark):
    """The same 15 pairs through the shared-sample batch engine."""
    ranking = benchmark.pedantic(_rank_with_batch_engine, rounds=3, iterations=1)
    assert len(ranking) == len(RANK_PAIRS)


def test_batch_engine_beats_per_pair_loop():
    """The headline claim measured directly: one shared sampling + density
    pass across 15 pairs must beat 15 independent per-pair passes.

    Best-of-two timings damp GC pauses and scheduler noise so the assertion
    stays safe on loaded CI runners (the real gap is several-fold).
    """
    def best_of_two(func):
        timings = []
        for _ in range(2):
            started = time.perf_counter()
            result = func()
            timings.append(time.perf_counter() - started)
        return result, min(timings)

    loop_results, loop_seconds = best_of_two(_rank_with_loop)
    ranking, batch_seconds = best_of_two(_rank_with_batch_engine)

    speedup = loop_seconds / batch_seconds if batch_seconds > 0 else float("inf")
    print(
        f"\nper-pair loop: {loop_seconds:.3f}s, batch engine: {batch_seconds:.3f}s, "
        f"speedup: {speedup:.1f}x over {len(RANK_PAIRS)} pairs"
    )
    assert len(ranking) == len(loop_results)
    assert batch_seconds < loop_seconds
