"""Micro-benchmarks of the framework's primitive operations.

These isolate the three phases analysed in Section 4.4 — reference-node
sampling, event-density computation (one h-hop BFS per reference node) and
the measure/z-score computation — so regressions in any phase are visible
independently of the full experiments.
"""

import itertools
import time

import numpy as np
import pytest

from repro.core.batch import BatchTescEngine
from repro.core.config import TescConfig
from repro.core.estimators import plain_estimate
from repro.core.parallel import ParallelBatchTescEngine
from repro.core.tesc import TescTester
from repro.datasets.synthetic_dblp import make_dblp_like
from repro.datasets.synthetic_twitter import make_twitter_like
from repro.events.attributed_graph import AttributedGraph
from repro.graph.mutation import rewire_random_edges
from repro.graph.traversal import BFSEngine
from repro.graph.vicinity import VicinityIndex
from repro.sampling.registry import create_sampler
from repro.stats.kendall import pair_concordance_sum, weighted_pair_concordance
from repro.streaming import Delta, ContinuousRanker, DeltaBatch, DynamicAttributedGraph

GRAPH = make_twitter_like(num_nodes=20_000, edges_per_node=8, random_state=1)
EVENT_NODES = np.random.default_rng(2).choice(GRAPH.num_nodes, size=5_000, replace=False)
VICINITY_INDEX = VicinityIndex(GRAPH, levels=(1, 2), lazy=True)

# A DBLP-like workload for the batch-vs-loop comparison: 15 keyword pairs
# tested on one graph, the shape of the paper's Tables 1-5 runs.
RANK_DATASET = make_dblp_like(
    num_communities=16, community_size=80, num_positive_pairs=5,
    num_negative_pairs=5, num_background_keywords=10, random_state=13,
)
RANK_PAIRS = (
    list(RANK_DATASET.positive_pairs)
    + list(RANK_DATASET.negative_pairs)
    + [("bg_0", "bg_1"), ("bg_2", "bg_3"), ("bg_4", "bg_5"),
       ("bg_6", "bg_7"), ("bg_8", "bg_9")]
)
RANK_CONFIG = TescConfig(vicinity_level=1, sample_size=300, random_state=17)


@pytest.mark.parametrize("level", [1, 2, 3])
def test_single_bfs(benchmark, level):
    """Figure 10a primitive: one h-hop BFS on a scale-free graph."""
    engine = BFSEngine(GRAPH)
    rng = np.random.default_rng(3)
    sources = rng.choice(GRAPH.num_nodes, size=64)
    counter = {"i": 0}

    def run():
        source = int(sources[counter["i"] % len(sources)])
        counter["i"] += 1
        return engine.vicinity(source, level)

    benchmark(run)


def test_batch_bfs_over_event_nodes(benchmark):
    """Algorithm 1 on a 5k-node event set (the Figure 9 x-axis midpoint)."""
    engine = BFSEngine(GRAPH)
    benchmark(lambda: engine.multi_source_vicinity(EVENT_NODES, 1))


# 600 reference-node sources for the per-node vs grouped BFS comparison (the
# shape of one density pass / vicinity-index fill at paper sample sizes).
BFS_SOURCES = np.random.default_rng(6).choice(GRAPH.num_nodes, size=600, replace=False)


@pytest.mark.parametrize("level", [1, 2])
def test_vicinity_sizes_per_node_loop(benchmark, level):
    """Baseline: one Python-level BFS per source (the pre-grouped hot path)."""

    def run():
        engine = BFSEngine(GRAPH)
        return np.array(
            [engine.vicinity(int(source), level).size for source in BFS_SOURCES]
        )

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.parametrize("level", [1, 2])
def test_vicinity_sizes_grouped(benchmark, level):
    """The same sizes through the grouped (vectorised multi-source) BFS."""
    engine = BFSEngine(GRAPH)
    benchmark.pedantic(
        lambda: engine.vicinity_sizes(BFS_SOURCES, level), rounds=3, iterations=1
    )


def test_density_counts_grouped(benchmark):
    """The density-pass primitive: marked counts of 8 events over 600
    reference vicinities in one grouped traversal."""
    engine = BFSEngine(GRAPH)
    indicators = np.random.default_rng(7).random((8, GRAPH.num_nodes)) < 0.05
    benchmark.pedantic(
        lambda: engine.grouped_marked_counts(BFS_SOURCES, 1, indicators),
        rounds=3, iterations=1,
    )


def test_grouped_bfs_beats_per_node_loop():
    """The vectorised multi-source BFS must beat the per-node Python loop on
    the vicinity-size workload (the gap is several-fold; best-of-two timings
    damp scheduler noise on loaded CI runners)."""
    graph = RANK_DATASET.attributed.csr
    sources = np.arange(graph.num_nodes, dtype=np.int64)

    def loop():
        engine = BFSEngine(graph)
        return np.array(
            [engine.vicinity(int(source), 2).size for source in sources]
        )

    def grouped():
        return BFSEngine(graph).vicinity_sizes(sources, 2)

    def best_of_two(func):
        timings = []
        for _ in range(2):
            started = time.perf_counter()
            result = func()
            timings.append(time.perf_counter() - started)
        return result, min(timings)

    loop_sizes, loop_seconds = best_of_two(loop)
    grouped_sizes, grouped_seconds = best_of_two(grouped)
    speedup = loop_seconds / grouped_seconds if grouped_seconds > 0 else float("inf")
    print(
        f"\nper-node loop: {loop_seconds:.3f}s, grouped BFS: {grouped_seconds:.3f}s, "
        f"speedup: {speedup:.1f}x over {sources.size} sources at h=2"
    )
    np.testing.assert_array_equal(loop_sizes, grouped_sizes)
    assert grouped_seconds < loop_seconds


@pytest.mark.parametrize("sample_size", [300, 900])
def test_zscore_computation(benchmark, sample_size):
    """Figure 10b primitive: the measure computation (auto-dispatched kernel)."""
    rng = np.random.default_rng(4)
    densities_a = rng.random(sample_size)
    densities_b = rng.random(sample_size)
    benchmark(lambda: plain_estimate(densities_a, densities_b))


# -- Kendall kernels: naive O(n²) vs merge-sort / Fenwick O(n log n) ----------
#
# Tie-heavy integer-valued vectors (the shape of real density columns) at the
# paper's n=900 and the large-n regimes the fast kernels unlock.  The naive
# kernel is benchmarked only up to n=5000 in the timed sweep — at n=20000 it
# builds multiple 3.2 GB sign matrices and takes ~a minute per call, so the
# 20000-point naive-vs-fast comparison runs exactly once, inside the asserted
# regression case below.

KERNEL_SIZES = (900, 5_000, 20_000)
_KERNEL_RNG = np.random.default_rng(21)
KERNEL_VECTORS = {
    n: (
        _KERNEL_RNG.integers(0, max(2, n // 3), size=n).astype(float),
        _KERNEL_RNG.integers(0, max(2, n // 3), size=n).astype(float),
        _KERNEL_RNG.random(n) * 10.0,
    )
    for n in KERNEL_SIZES
}


@pytest.mark.parametrize("n", [900, 5_000])
def test_kendall_kernel_naive(benchmark, n):
    """Baseline: the O(n²) sign-matrix concordance kernel."""
    x, y, _ = KERNEL_VECTORS[n]
    benchmark.pedantic(
        lambda: pair_concordance_sum(x, y, kernel="naive"), rounds=2, iterations=1
    )


@pytest.mark.parametrize("n", [900, 5_000, 20_000])
def test_kendall_kernel_fast(benchmark, n):
    """The O(n log n) merge-sort (Knight) concordance kernel."""
    x, y, _ = KERNEL_VECTORS[n]
    benchmark.pedantic(
        lambda: pair_concordance_sum(x, y, kernel="fast"), rounds=3, iterations=1
    )


@pytest.mark.parametrize("n", [900, 5_000])
def test_kendall_weighted_kernel_naive(benchmark, n):
    """Baseline: the O(n²) weighted (Eq. 8) concordance kernel."""
    x, y, w = KERNEL_VECTORS[n]
    benchmark.pedantic(
        lambda: weighted_pair_concordance(x, y, w, kernel="naive"),
        rounds=2, iterations=1,
    )


@pytest.mark.parametrize("n", [900, 5_000, 20_000])
def test_kendall_weighted_kernel_fast(benchmark, n):
    """The O(n log n) Fenwick-tree weighted (Eq. 8) kernel."""
    x, y, w = KERNEL_VECTORS[n]
    benchmark.pedantic(
        lambda: weighted_pair_concordance(x, y, w, kernel="fast"),
        rounds=3, iterations=1,
    )


def test_fast_kernel_beats_naive_at_20k():
    """The PR's kernel acceptance bar, measured directly at n=20000:

    * the merge-sort kernel returns the *same exact integer* S as the naive
      sign-matrix kernel and is >= 5x faster (measured ~1000x+);
    * its peak additional memory is O(n) — a few rank-vector-sized arrays —
      while the naive kernel allocates O(n²) sign matrices (>= n² bytes);
    * the Fenwick weighted kernel matches the naive weighted kernel to
      <= 1e-9 relative and is >= 5x faster at n=5000 (the naive weighted
      kernel at n=20000 would hold ~16 GB of matrices, past CI memory).
    """
    import tracemalloc

    n = 20_000
    x, y, w = KERNEL_VECTORS[n]

    def timed(func):
        started = time.perf_counter()
        result = func()
        return result, time.perf_counter() - started

    def traced_peak(func):
        # Separate untimed run: tracemalloc boxes every allocation, which
        # distorts timings (especially the Fenwick sweep's Python loop).
        tracemalloc.start()
        func()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return peak

    s_fast, fast_seconds = timed(lambda: pair_concordance_sum(x, y, kernel="fast"))
    s_naive, naive_seconds = timed(lambda: pair_concordance_sum(x, y, kernel="naive"))
    speedup = naive_seconds / fast_seconds if fast_seconds > 0 else float("inf")
    fast_peak = traced_peak(lambda: pair_concordance_sum(x, y, kernel="fast"))
    # The naive memory claim is checked at n=5000 to avoid a second
    # minute-long 9.6 GB naive pass; O(n²) growth is the same either way.
    xw, yw, ww = KERNEL_VECTORS[5_000]
    naive_peak_5k = traced_peak(
        lambda: pair_concordance_sum(xw, yw, kernel="naive")
    )
    print(
        f"\nS kernel at n={n}: naive {naive_seconds:.2f}s, fast "
        f"{fast_seconds * 1e3:.1f}ms (peak {fast_peak / 1e6:.2f} MB), "
        f"speedup {speedup:.0f}x; naive peak at n=5000: "
        f"{naive_peak_5k / 1e6:.0f} MB"
    )
    assert s_fast == s_naive  # exact integer agreement
    assert speedup >= 5.0
    # O(n) vs O(n²): the fast path stays within a few dozen rank-vector-sized
    # arrays even at n=20000, while the naive path materialises n×n sign
    # matrices (>= n² bytes already at n=5000).
    assert fast_peak <= 64 * 8 * n
    assert naive_peak_5k >= 5_000 * 5_000

    (num_fast, den_fast), fast_w_seconds = timed(
        lambda: weighted_pair_concordance(xw, yw, ww, kernel="fast")
    )
    (num_naive, den_naive), naive_w_seconds = timed(
        lambda: weighted_pair_concordance(xw, yw, ww, kernel="naive")
    )
    weighted_speedup = (
        naive_w_seconds / fast_w_seconds if fast_w_seconds > 0 else float("inf")
    )
    print(
        f"weighted kernel at n=5000: naive {naive_w_seconds:.2f}s, fast "
        f"{fast_w_seconds * 1e3:.1f}ms, speedup {weighted_speedup:.0f}x"
    )
    scale = max(1.0, abs(den_naive))
    assert abs(num_fast - num_naive) <= 1e-9 * scale
    assert abs(den_fast - den_naive) <= 1e-9 * scale
    assert weighted_speedup >= 5.0


@pytest.mark.parametrize("sampler_name", ["batch_bfs", "importance", "whole_graph"])
def test_reference_sampling(benchmark, sampler_name):
    """One reference-node sample of n=300 at h=1 per sampler."""
    sampler = create_sampler(
        sampler_name, GRAPH, vicinity_index=VICINITY_INDEX, random_state=5
    )
    benchmark.pedantic(
        lambda: sampler.sample(EVENT_NODES, 1, 300), rounds=3, iterations=1
    )


def _rank_with_loop():
    tester = TescTester(RANK_DATASET.attributed, RANK_CONFIG)
    return [tester.test(event_a, event_b) for event_a, event_b in RANK_PAIRS]


def _rank_with_batch_engine():
    engine = BatchTescEngine(RANK_DATASET.attributed, RANK_CONFIG)
    return engine.rank_pairs(RANK_PAIRS)


def test_rank_pairs_per_pair_loop(benchmark):
    """Baseline: 15 keyword pairs through per-pair TescTester.test."""
    results = benchmark.pedantic(_rank_with_loop, rounds=3, iterations=1)
    assert len(results) == len(RANK_PAIRS)


def test_rank_pairs_batch_engine(benchmark):
    """The same 15 pairs through the shared-sample batch engine."""
    ranking = benchmark.pedantic(_rank_with_batch_engine, rounds=3, iterations=1)
    assert len(ranking) == len(RANK_PAIRS)


def test_batch_engine_beats_per_pair_loop():
    """The headline claim measured directly: one shared sampling + density
    pass across 15 pairs must beat 15 independent per-pair passes.

    Best-of-two timings damp GC pauses and scheduler noise so the assertion
    stays safe on loaded CI runners (the real gap is several-fold).
    """
    def best_of_two(func):
        timings = []
        for _ in range(2):
            started = time.perf_counter()
            result = func()
            timings.append(time.perf_counter() - started)
        return result, min(timings)

    loop_results, loop_seconds = best_of_two(_rank_with_loop)
    ranking, batch_seconds = best_of_two(_rank_with_batch_engine)

    speedup = loop_seconds / batch_seconds if batch_seconds > 0 else float("inf")
    print(
        f"\nper-pair loop: {loop_seconds:.3f}s, batch engine: {batch_seconds:.3f}s, "
        f"speedup: {speedup:.1f}x over {len(RANK_PAIRS)} pairs"
    )
    assert len(ranking) == len(loop_results)
    assert batch_seconds < loop_seconds


# A heavier DBLP-like workload for the serial-vs-parallel comparison: 50
# keyword pairs at the paper's n=900 sample size, the shape of the 50-pair
# acceptance run.  Pool start-up and shard transport are part of the measured
# parallel times (a fresh engine per round), so the comparison is honest
# about overheads; the parallel win scales with the number of physical cores
# the runner provides.
PARALLEL_DATASET = make_dblp_like(
    num_communities=28, community_size=60, num_positive_pairs=13,
    num_negative_pairs=12, num_background_keywords=50, random_state=11,
)
PARALLEL_PAIRS = (
    list(PARALLEL_DATASET.positive_pairs)
    + list(PARALLEL_DATASET.negative_pairs)
    + [
        (PARALLEL_DATASET.background_events[i], PARALLEL_DATASET.background_events[i + 1])
        for i in range(0, len(PARALLEL_DATASET.background_events), 2)
    ]
)
PARALLEL_CONFIG = TescConfig(vicinity_level=1, sample_size=900, random_state=17)


def test_rank_pairs_serial_fifty(benchmark):
    """Serial baseline: the 50-pair workload through one BatchTescEngine."""

    def run():
        engine = BatchTescEngine(PARALLEL_DATASET.attributed, PARALLEL_CONFIG)
        return engine.rank_pairs(PARALLEL_PAIRS)

    ranking = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(ranking) == len(PARALLEL_PAIRS)


@pytest.mark.parametrize("workers", [2, 4])
def test_rank_pairs_parallel_fifty(benchmark, workers):
    """The same 50 pairs sharded across a process pool."""

    def run():
        with ParallelBatchTescEngine(
            PARALLEL_DATASET.attributed, PARALLEL_CONFIG, workers=workers
        ) as engine:
            return engine.rank_pairs(PARALLEL_PAIRS)

    ranking = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(ranking) == len(PARALLEL_PAIRS)


# -- streaming: incremental vs full re-rank under edge churn ------------------
#
# A 20k-node DBLP-like graph with 10 monitored keyword pairs; every round
# applies a small churn batch (20 rewires = 40 edge deltas, the shape of a
# realistic streaming commit, via the mutation helpers' delta reporting) and
# refreshes the ranking at h=2.  The full path rebuilds the attributed graph
# and ranks from scratch; the streaming path commits the same batch through
# ContinuousRanker, which recomputes only the dirtied density columns.  Both
# produce bit-identical rankings (asserted below).
#
# (Until the O(n log n) Kendall kernels landed, this case ran 1% churn at
# h=1 and measured ~25-35x: the full path was dominated by O(n²) estimate
# work the streaming path skipped.  With estimates now cheap everywhere, the
# streaming advantage is what it structurally should be — the density BFS
# over clean columns — so the workload pins that regime: expensive h=2
# vicinities, a large shared sample, and a delta that dirties only a few
# hundred of ~4k columns.)

STREAM_DATASET = make_dblp_like(
    num_communities=200, community_size=77, num_positive_pairs=5,
    num_negative_pairs=5, num_background_keywords=0, random_state=13,
)
STREAM_PAIRS = STREAM_DATASET.positive_pairs + STREAM_DATASET.negative_pairs
#: One commit's worth of edge churn: 20 rewires = 20 removals + 20 additions.
STREAM_CHURN_REWIRES = 20
# sample_size exceeds the monitored population, so the shared sample is the
# whole reference population (n ~ 4.2k at h=2) — the regime where the
# streaming column cache, not the sampler, carries the cost.
STREAM_CONFIG = TescConfig(vicinity_level=2, sample_size=8000, random_state=17)
_STREAM_SEEDS = itertools.count(1000)


def _churn_batch(mutable_graph, seed):
    """Apply one churn commit to ``mutable_graph`` in place; return its deltas."""
    _, deltas = rewire_random_edges(
        mutable_graph, STREAM_CHURN_REWIRES, random_state=seed,
        in_place=True, with_deltas=True,
    )
    return DeltaBatch.coerce(deltas)


def test_rank_full_rerank_after_churn(benchmark):
    """Baseline: rebuild the attributed graph and rank all pairs from scratch."""
    mutable = STREAM_DATASET.graph.copy()
    events = STREAM_DATASET.attributed.events

    def setup():
        _churn_batch(mutable, next(_STREAM_SEEDS))
        return (), {}

    def run():
        attributed = AttributedGraph(mutable, events.copy())
        return BatchTescEngine(attributed, STREAM_CONFIG).rank_pairs(STREAM_PAIRS)

    benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)


def test_rank_incremental_rerank_after_churn(benchmark):
    """The same churn committed through the streaming ContinuousRanker."""
    dynamic = DynamicAttributedGraph(
        STREAM_DATASET.graph.copy(), STREAM_DATASET.attributed.events.copy()
    )
    ranker = ContinuousRanker(dynamic, STREAM_PAIRS, STREAM_CONFIG)
    ranker.commit()  # initial ranking warms the column cache
    mutable = STREAM_DATASET.graph.copy()

    def setup():
        return (_churn_batch(mutable, next(_STREAM_SEEDS)),), {}

    benchmark.pedantic(
        lambda batch: ranker.commit(batch), setup=setup, rounds=3, iterations=1
    )


def test_incremental_rerank_beats_full_rerank():
    """The streaming acceptance bar, measured directly: after a small
    edge-churn commit on the 20k-node graph at h=2, the streaming commit
    must be >= 5x faster than a full ``rank_pairs`` re-rank — while
    returning the bit-identical ranking (~6-8x measured; three rounds damp
    scheduler noise and the best round is asserted)."""
    dynamic = DynamicAttributedGraph(
        STREAM_DATASET.graph.copy(), STREAM_DATASET.attributed.events.copy()
    )
    ranker = ContinuousRanker(dynamic, STREAM_PAIRS, STREAM_CONFIG)
    ranker.commit()
    mutable = STREAM_DATASET.graph.copy()

    speedups = []
    for round_id in range(3):
        batch = _churn_batch(mutable, 2000 + round_id)

        started = time.perf_counter()
        attributed = AttributedGraph(
            mutable, STREAM_DATASET.attributed.events.copy()
        )
        full = BatchTescEngine(attributed, STREAM_CONFIG).rank_pairs(STREAM_PAIRS)
        full_seconds = time.perf_counter() - started

        started = time.perf_counter()
        delta = ranker.commit(batch)
        incremental_seconds = time.perf_counter() - started

        assert [pair.events for pair in delta.ranking] == [
            pair.events for pair in full
        ]
        assert [pair.score for pair in delta.ranking] == [
            pair.score for pair in full
        ]
        assert [pair.verdict for pair in delta.ranking] == [
            pair.verdict for pair in full
        ]
        stats = delta.stats
        speedup = (
            full_seconds / incremental_seconds
            if incremental_seconds > 0 else float("inf")
        )
        speedups.append(speedup)
        print(
            f"\nchurn round {round_id}: full {full_seconds:.3f}s, incremental "
            f"{incremental_seconds:.3f}s, speedup {speedup:.1f}x "
            f"(columns {stats.columns_recomputed}/{stats.columns_total} "
            f"recomputed, {stats.pairs_rescored} pairs re-scored)"
        )
    assert max(speedups) >= 5.0


# -- progressive top-k: confidence-bound pruning vs full-budget ranking -------
#
# A DBLP-scale all-pairs top-k scan: 30 keywords (3 strongly co-occurring
# planted pairs plus background noise) on a ~20k-node community-ring graph,
# 435 candidate pairs, reference budget 8000 at h=1, k=3.  The full path
# estimates every pair on the full budget; the progressive engine grows one
# prefix-extendable shared sample in geometric rounds (here 512 -> 2048 ->
# 8000 — a first round big enough for decisive bounds, then 4x jumps),
# prunes pairs whose confidence interval falls below the k-th lower
# bound, and only the survivors ever see the full sample — while returning
# the bit-identical top-k (asserted below).  The quadratic pair count is the
# point: an all-pairs scan over E events pays O(E^2) full-budget estimates,
# and the bounds cut that to the planted pairs after the first round or two.

TOPK_DATASET = make_dblp_like(
    num_communities=200, community_size=77, num_positive_pairs=3,
    num_negative_pairs=0, num_background_keywords=24,
    cooccurrence_fraction=0.7, keyword_coverage=0.9, communities_per_pair=6,
    random_state=13,
)
TOPK_K = 3
TOPK_CONFIG = TescConfig(
    vicinity_level=1, sample_size=8000, random_state=17,
    topk_initial_sample_size=512, topk_growth_factor=4.0,
)


def _topk_full_rank():
    engine = BatchTescEngine(TOPK_DATASET.attributed, TOPK_CONFIG)
    return engine.rank_pairs("all")


def _topk_progressive():
    from repro.core.topk import ProgressiveTopKEngine

    engine = ProgressiveTopKEngine(TOPK_DATASET.attributed, TOPK_CONFIG)
    return engine.top_k(TOPK_K)


def test_topk_full_rank_all_pairs(benchmark):
    """Baseline: the 435-pair all-pairs scan through full-budget rank_pairs."""
    ranking = benchmark.pedantic(_topk_full_rank, rounds=3, iterations=1)
    assert len(ranking) == 435


def test_topk_progressive_engine(benchmark):
    """The same scan through the progressive top-k engine (k=3)."""
    ranking = benchmark.pedantic(_topk_progressive, rounds=3, iterations=1)
    assert len(ranking) == TOPK_K


def test_progressive_topk_beats_full_rank():
    """The PR's top-k acceptance bar, measured directly: on the all-pairs
    DBLP-scale scan the progressive engine must return the exact same top-k
    as full-budget ``rank_pairs`` — keys, scores, z-scores, verdicts and
    ranks — at >= 3x less wall-clock (~4x measured; best of three rounds is
    asserted to damp scheduler noise on loaded CI runners)."""
    speedups = []
    for _ in range(3):
        started = time.perf_counter()
        full = _topk_full_rank()
        full_seconds = time.perf_counter() - started

        started = time.perf_counter()
        progressive = _topk_progressive()
        progressive_seconds = time.perf_counter() - started

        expected = full.top(TOPK_K)
        assert [pair.events for pair in progressive] == [
            pair.events for pair in expected
        ]
        assert [pair.score for pair in progressive] == [
            pair.score for pair in expected
        ]
        assert [pair.z_score for pair in progressive] == [
            pair.z_score for pair in expected
        ]
        assert [pair.verdict for pair in progressive] == [
            pair.verdict for pair in expected
        ]
        assert [pair.rank for pair in progressive] == [
            pair.rank for pair in expected
        ]
        stats = progressive.topk_stats
        assert stats.pairs_pruned > 0
        speedup = (
            full_seconds / progressive_seconds
            if progressive_seconds > 0 else float("inf")
        )
        speedups.append(speedup)
        print(
            f"\ntop-{TOPK_K} of {stats.num_pairs} pairs: full "
            f"{full_seconds:.3f}s, progressive {progressive_seconds:.3f}s, "
            f"speedup {speedup:.1f}x (pruned {stats.pairs_pruned}, "
            f"survivors {stats.pairs_survived}, rounds "
            f"{[round_.sample_size for round_ in stats.rounds]})"
        )
    assert max(speedups) >= 3.0


# -- correlation service: warm persistent pool vs cold fork vs serial ---------
#
# The PR 2 pool forked fresh worker processes inside every rank_pairs call,
# so on the 50-pair acceptance workload "parallel" paid ~150ms of spawn +
# import cost per call and lost to serial outright (BENCH_pr5).  The
# persistent service pool forks once per server lifetime and reuses the
# workers; these cases measure all three regimes on the same workload:
#
#   serial     one BatchTescEngine, no processes;
#   cold pool  global pool shut down before every round, so spawn cost is
#              inside the measured time (the old per-call regime);
#   warm pool  workers already up, per-call cost is shm transport + dispatch.
#
# The asserted regression case pins the acceptance bar: warm workers=2 beats
# serial or ties within 10% — and returns the bit-identical ranking.


def _service_rank_serial():
    engine = BatchTescEngine(PARALLEL_DATASET.attributed, PARALLEL_CONFIG)
    return engine.rank_pairs(PARALLEL_PAIRS)


def _service_rank_pooled(workers=2):
    with ParallelBatchTescEngine(
        PARALLEL_DATASET.attributed, PARALLEL_CONFIG, workers=workers
    ) as engine:
        return engine.rank_pairs(PARALLEL_PAIRS)


def test_rank_pairs_cold_pool_fifty(benchmark):
    """The old fork-per-call regime: pool spawn inside every measured round."""
    from repro.service.pool import shutdown_global_pool

    def setup():
        shutdown_global_pool()
        return (), {}

    benchmark.pedantic(_service_rank_pooled, setup=setup, rounds=3, iterations=1)


def test_rank_pairs_warm_pool_fifty(benchmark):
    """The service regime: persistent workers, fresh engine per round."""
    from repro.service.pool import global_pool

    global_pool().ensure(2)
    _service_rank_pooled()  # warm worker-side dataset caches too
    benchmark.pedantic(_service_rank_pooled, rounds=5, iterations=1)


def test_warm_pool_ties_or_beats_serial_fifty():
    """The service PR's acceptance bar, measured directly: on the 50-pair
    workload, warm-pool rank_pairs with workers=2 must beat serial or tie
    within 10% — while returning the bit-identical ranking.  (Cold-pool
    timing is printed alongside for the trajectory record; on a single-core
    runner the warm win comes from overlapping BFS with estimate work, on
    multi-core runners it grows with the cores.)  Best-of-five timings damp
    scheduler noise; both sides are warmed before measurement.
    """
    from repro.service.pool import global_pool, shutdown_global_pool

    shutdown_global_pool()
    started = time.perf_counter()
    cold = _service_rank_pooled()
    cold_seconds = time.perf_counter() - started

    # Warm both sides, then interleave the measured rounds: CPU-load drift
    # on a shared runner hits both legs alike instead of whichever leg
    # happens to run later.
    global_pool().ensure(2)
    _service_rank_serial()
    _service_rank_pooled()
    serial_timings, warm_timings = [], []
    for _ in range(6):
        started = time.perf_counter()
        serial = _service_rank_serial()
        serial_timings.append(time.perf_counter() - started)
        started = time.perf_counter()
        warm = _service_rank_pooled()
        warm_timings.append(time.perf_counter() - started)
    serial_seconds = min(serial_timings)
    warm_seconds = min(warm_timings)

    ratio = warm_seconds / serial_seconds if serial_seconds > 0 else float("inf")
    print(
        f"\n50-pair rank: serial {serial_seconds * 1e3:.1f}ms, warm pool "
        f"(2 workers) {warm_seconds * 1e3:.1f}ms ({ratio:.2f}x serial), "
        f"cold pool {cold_seconds * 1e3:.1f}ms"
    )
    for ranking in (cold, warm):
        assert [pair.events for pair in ranking] == [
            pair.events for pair in serial
        ]
        assert [pair.score for pair in ranking] == [
            pair.score for pair in serial
        ]
        assert [pair.z_score for pair in ranking] == [
            pair.z_score for pair in serial
        ]
        assert [pair.verdict for pair in ranking] == [
            pair.verdict for pair in serial
        ]
    assert warm_seconds <= 1.1 * serial_seconds, (
        f"warm pool {warm_seconds * 1e3:.1f}ms vs serial "
        f"{serial_seconds * 1e3:.1f}ms ({ratio:.2f}x) — the persistent pool "
        "must tie serial within 10% or beat it on the 50-pair workload"
    )


def test_parallel_engine_matches_serial_on_bench_workload():
    """Sanity alongside the timing cases: the parallel path returns exactly
    the serial ranking on the benchmark workload (and reports its speedup —
    wall-clock parity is expected on single-core runners, a multiple on
    multi-core ones, so no timing assertion is made here)."""
    serial_engine = BatchTescEngine(PARALLEL_DATASET.attributed, PARALLEL_CONFIG)
    started = time.perf_counter()
    serial = serial_engine.rank_pairs(PARALLEL_PAIRS)
    serial_seconds = time.perf_counter() - started
    with ParallelBatchTescEngine(
        PARALLEL_DATASET.attributed, PARALLEL_CONFIG, workers=4
    ) as engine:
        started = time.perf_counter()
        parallel = engine.rank_pairs(PARALLEL_PAIRS)
        parallel_seconds = time.perf_counter() - started
    print(
        f"\nserial: {serial_seconds:.3f}s, parallel (4 workers): "
        f"{parallel_seconds:.3f}s over {len(PARALLEL_PAIRS)} pairs"
    )
    assert [pair.events for pair in parallel] == [pair.events for pair in serial]
    assert [pair.score for pair in parallel] == [pair.score for pair in serial]
    assert [pair.verdict for pair in parallel] == [pair.verdict for pair in serial]


# -- HTAP: snapshot-isolated queries racing commits ---------------------------
#
# The PR 7 acceptance scenario: a dynamic graph takes a steady stream of
# bulky structural commits while reader threads rank the same monitored
# pairs.  The unit of merit is analytical queries completed **during commit
# windows** — the span of the commit call itself, during which the old
# lock-serialised engine held its write lock and every reader queued.
# Under snapshot isolation readers lease the pre-commit epoch straight from
# the lease table (the wait-free `pin()` fast path) and keep answering from
# its cached ranking right through the apply; under the reference
# `_ReadWriteLock` discipline they block until the writer is done.  Both
# systems run the identical commit schedule and the identical reader
# workload (the warm rank that re-establishes the new epoch's ranking runs
# *outside* the window in both), and every MVCC answer is asserted
# bit-identical to a serial from-scratch reference at the epoch it reports.

HTAP_DATASET = make_dblp_like(
    num_communities=10, community_size=30, num_positive_pairs=4,
    num_negative_pairs=3, num_background_keywords=10, random_state=11,
)
HTAP_CONFIG = TescConfig(vicinity_level=1, sample_size=200, random_state=17)
HTAP_PAIRS = list(HTAP_DATASET.positive_pairs)[:2] + list(HTAP_DATASET.negative_pairs)[:1]
HTAP_COMMITS = 4
HTAP_READERS = 2
#: Structural deltas per commit — sized so one apply (netting + CSR splice +
#: vicinity rebase) spans a measurable window rather than a few microseconds.
HTAP_EDGES_PER_COMMIT = 2500
#: Idle gap between commit windows (readers drain their cache-hit queries).
HTAP_GAP_SECONDS = 0.03


def _htap_dynamic():
    attributed = HTAP_DATASET.attributed
    return DynamicAttributedGraph(
        attributed.csr.copy() if hasattr(attributed.csr, "copy") else attributed.csr,
        {name: attributed.event_nodes(name) for name in attributed.event_names()},
    )


def _htap_schedule(dynamic):
    """HTAP_COMMITS bulk edge-add batches, every delta effective (fresh edge)."""
    existing = set()
    for u in range(dynamic.num_nodes):
        for v in dynamic.csr.neighbors(u):
            v = int(v)
            if u < v:
                existing.add((u, v))
    non_edges = [
        (u, v)
        for u in range(dynamic.num_nodes)
        for v in range(u + 1, dynamic.num_nodes)
        if (u, v) not in existing
    ]
    order = np.random.default_rng(23).permutation(len(non_edges))
    assert len(order) >= HTAP_COMMITS * HTAP_EDGES_PER_COMMIT
    return [
        [
            Delta.edge_add(*non_edges[int(j)]).to_record()
            for j in order[i * HTAP_EDGES_PER_COMMIT:(i + 1) * HTAP_EDGES_PER_COMMIT]
        ]
        for i in range(HTAP_COMMITS)
    ]


def _run_htap_scenario(lock_serialised):
    """Run the commit/query race; returns per-system measurements.

    ``lock_serialised=False`` runs the MVCC engine as shipped.
    ``lock_serialised=True`` wraps every reader in ``acquire_read`` and the
    whole commit window in ``acquire_write`` of the reference
    ``_ReadWriteLock`` — the pre-snapshot-isolation service discipline —
    on an otherwise identical engine.
    """
    import threading

    from repro.service.engine import ServiceEngine, _ReadWriteLock

    dynamic = _htap_dynamic()
    schedule = _htap_schedule(dynamic)
    engine = ServiceEngine(dynamic, HTAP_CONFIG)
    lock = _ReadWriteLock() if lock_serialised else None
    engine.rank(HTAP_PAIRS)  # warm the initial epoch

    responses = []
    responses_lock = threading.Lock()
    done = threading.Event()
    errors = []

    def reader():
        try:
            while not done.is_set():
                if lock is not None:
                    lock.acquire_read()
                try:
                    response = engine.rank(HTAP_PAIRS)
                finally:
                    if lock is not None:
                        lock.release_read()
                with responses_lock:
                    responses.append((time.perf_counter(), response))
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=reader) for _ in range(HTAP_READERS)]
    for thread in threads:
        thread.start()
    windows = []
    try:
        for batch in schedule:
            time.sleep(HTAP_GAP_SECONDS)
            started = time.perf_counter()
            if lock is not None:
                lock.acquire_write()
            try:
                engine.commit(batch)
            finally:
                if lock is not None:
                    lock.release_write()
            windows.append((started, time.perf_counter()))
            # Warm rank at the new epoch — outside the window, under the
            # read discipline of the scenario (it is a read, after all).
            if lock is not None:
                lock.acquire_read()
            try:
                engine.rank(HTAP_PAIRS)
            finally:
                if lock is not None:
                    lock.release_read()
        time.sleep(HTAP_GAP_SECONDS)
    finally:
        done.set()
        for thread in threads:
            thread.join(timeout=120.0)
    engine.close()
    assert not errors, errors

    in_window = [
        response for finished, response in responses
        if any(start <= finished <= end for start, end in windows)
    ]
    window_seconds = sum(end - start for start, end in windows)
    return {
        "responses": responses,
        "in_window": len(in_window),
        "window_seconds": window_seconds,
        "total_queries": len(responses),
        "schedule": schedule,
    }


def test_htap_scenario_mvcc(benchmark):
    """Wall-clock of the full MVCC commit/query race (JSON artifact case)."""
    result = benchmark.pedantic(
        lambda: _run_htap_scenario(lock_serialised=False), rounds=3, iterations=1
    )
    assert result["total_queries"] > 0


def test_htap_scenario_lock_serialised(benchmark):
    """The identical race behind the reference read/write lock."""
    result = benchmark.pedantic(
        lambda: _run_htap_scenario(lock_serialised=True), rounds=3, iterations=1
    )
    assert result["total_queries"] > 0


def test_htap_mvcc_beats_lock_serialised():
    """The HTAP acceptance bar: at an equal commit rate, snapshot isolation
    must complete >= 3x the lock-serialised baseline's query throughput
    during commit windows — and every MVCC answer must be bit-identical to
    a from-scratch serial reference at the epoch it reports."""
    from repro.service.engine import pair_record

    mvcc = _run_htap_scenario(lock_serialised=False)
    locked = _run_htap_scenario(lock_serialised=True)

    mvcc_rate = mvcc["in_window"] / mvcc["window_seconds"]
    locked_rate = locked["in_window"] / locked["window_seconds"]
    print(
        f"\nqueries during commit windows: mvcc {mvcc['in_window']} "
        f"({mvcc_rate:.0f}/s over {mvcc['window_seconds'] * 1e3:.0f}ms), "
        f"lock-serialised {locked['in_window']} "
        f"({locked_rate:.0f}/s over {locked['window_seconds'] * 1e3:.0f}ms); "
        f"totals {mvcc['total_queries']} vs {locked['total_queries']}"
    )
    assert mvcc["in_window"] >= 20, (
        "too few MVCC queries completed during commit windows for the rate "
        f"to be meaningful (got {mvcc['in_window']})"
    )
    assert mvcc_rate >= 3.0 * locked_rate, (
        f"snapshot isolation must sustain >= 3x the lock-serialised "
        f"baseline during commit windows, got {mvcc_rate:.0f}/s vs "
        f"{locked_rate:.0f}/s"
    )

    # Bit-identity: replay each observed epoch's prefix serially and compare.
    references = {}
    for _finished, response in mvcc["responses"]:
        epoch = response["epoch"]
        if epoch not in references:
            replayed = _htap_dynamic()
            for batch in mvcc["schedule"][:epoch]:
                applied = replayed.apply(
                    [Delta.from_record(record) for record in batch]
                )
                assert applied.changed
            ranking = BatchTescEngine(
                replayed.snapshot(), HTAP_CONFIG
            ).rank_pairs(HTAP_PAIRS)
            references[epoch] = [pair_record(pair) for pair in ranking.pairs]
        assert response["pairs"] == references[epoch], (
            f"MVCC answer at epoch {epoch} diverged from the serial reference"
        )


# -- observability: instrumentation overhead on the service rank path ---------
#
# The metrics registry and span tracing sit on every service request.  The
# bar: a fully instrumented rank (enabled registry, per-stage spans, trace
# buffer, latency histograms) stays within 3% of the same engine built with
# the no-op registry — the instruments are lock-guarded counter bumps and a
# handful of contextvar reads, nothing proportional to the sample size.
# Fresh engines per round keep every request cache-missing, so the measured
# path includes sampling, the density pass and the Kendall estimates — the
# work the instruments are amortised against.


def _service_rank_once(metrics):
    from repro.service.engine import ServiceEngine

    engine = ServiceEngine(
        RANK_DATASET.attributed, RANK_CONFIG, workers=1, metrics=metrics
    )
    try:
        started = time.perf_counter()
        result = engine.rank(RANK_PAIRS)
        elapsed = time.perf_counter() - started
    finally:
        engine.close()
    assert len(result["pairs"]) == len(RANK_PAIRS)
    return elapsed


@pytest.mark.parametrize("mode", ["instrumented", "noop"])
def test_service_rank_instrumentation(benchmark, mode):
    """The 15-pair service rank path, instrumented vs no-op registry."""
    from repro.obs import MetricsRegistry, NULL_REGISTRY

    def run():
        metrics = MetricsRegistry() if mode == "instrumented" else NULL_REGISTRY
        return _service_rank_once(metrics)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_instrumentation_overhead_within_three_percent():
    """The observability acceptance bar, measured directly: best-of-five
    interleaved rounds, instrumented within 3% of the no-op build (plus a
    1ms absolute grace so scheduler noise on a sub-second workload cannot
    fail the bar spuriously)."""
    from repro.obs import MetricsRegistry, NULL_REGISTRY

    instrumented, noop = [], []
    _service_rank_once(NULL_REGISTRY)  # warm imports/caches off the clock
    for _ in range(5):
        noop.append(_service_rank_once(NULL_REGISTRY))
        instrumented.append(_service_rank_once(MetricsRegistry()))

    best_instrumented, best_noop = min(instrumented), min(noop)
    overhead = (
        best_instrumented / best_noop - 1.0 if best_noop > 0 else 0.0
    )
    print(
        f"\ninstrumented: {best_instrumented:.4f}s, no-op: {best_noop:.4f}s, "
        f"overhead: {overhead * 100:+.2f}%"
    )
    assert best_instrumented <= 1.03 * best_noop + 1e-3, (
        f"instrumentation overhead {overhead * 100:.2f}% exceeds the 3% bar "
        f"({best_instrumented:.4f}s vs {best_noop:.4f}s)"
    )


# -- robustness: fault-seam overhead on the service rank path -----------------
#
# The fault-injection seams (faults.inject at dispatch/socket/fsync sites)
# and the cooperative deadline checkpoints sit on every service request,
# armed or not.  The bar: a rank through the *disarmed* seams stays within
# 3% of the same engine with both hooks compiled down to bare no-ops — the
# disarmed fast path is a single module-global None check and the
# checkpoint a contextvar read, nothing proportional to the sample size.


def test_fault_seam_overhead_within_three_percent():
    """The robustness acceptance bar, measured directly: best-of-five
    interleaved rounds, disarmed seams within 3% of a build with
    ``faults.inject`` and ``deadlines.checkpoint`` patched to no-ops
    (plus a 1ms absolute grace so scheduler noise on a sub-second
    workload cannot fail the bar spuriously)."""
    from repro.obs import NULL_REGISTRY
    from repro.service import faults
    from repro.utils import deadlines

    assert faults.active() is None, "seams must be disarmed for this bar"

    def _noop(*args, **kwargs):
        return None

    def _stripped_rank_once():
        real_inject, real_checkpoint = faults.inject, deadlines.checkpoint
        faults.inject, deadlines.checkpoint = _noop, _noop
        try:
            return _service_rank_once(NULL_REGISTRY)
        finally:
            faults.inject, deadlines.checkpoint = real_inject, real_checkpoint

    seamed, stripped = [], []
    _service_rank_once(NULL_REGISTRY)  # warm imports/caches off the clock
    for _ in range(5):
        stripped.append(_stripped_rank_once())
        seamed.append(_service_rank_once(NULL_REGISTRY))

    best_seamed, best_stripped = min(seamed), min(stripped)
    overhead = (
        best_seamed / best_stripped - 1.0 if best_stripped > 0 else 0.0
    )
    print(
        f"\nseamed: {best_seamed:.4f}s, stripped: {best_stripped:.4f}s, "
        f"overhead: {overhead * 100:+.2f}%"
    )
    assert best_seamed <= 1.03 * best_stripped + 1e-3, (
        f"fault-seam overhead {overhead * 100:.2f}% exceeds the 3% bar "
        f"({best_seamed:.4f}s vs {best_stripped:.4f}s)"
    )


# -- durability: cold start from a checkpoint vs full WAL replay --------------
#
# The recovery acceptance bar for the checkpoint store: on a 200-batch log
# of edge churn, booting from the newest checkpoint (plus an empty WAL tail)
# must be >= 3x faster than replaying the whole log from scratch — while
# restoring the bit-identical graph.  Two on-disk deployments are staged
# once: "replay/" has the full uncompacted WAL and no checkpoint; "ckpt/"
# has a checkpoint covering all 200 batches and the compacted WAL the
# service would leave behind.  Both boots go through the real recovery
# ladder (WAL open + recover()), exactly what ``tesc serve --store`` does.

COLD_START_BATCHES = 200
_COLD_START: dict = {}


def _cold_start_deployments():
    """Stage both deployments on disk (once per benchmark session)."""
    if _COLD_START:
        return _COLD_START
    import os
    import shutil
    import tempfile

    from repro.storage.checkpoint import CheckpointStore
    from repro.streaming.delta import WriteAheadLog

    root = tempfile.mkdtemp(prefix="tesc-bench-coldstart-")
    replay_wal = os.path.join(root, "replay", "wal.log")
    ckpt_wal = os.path.join(root, "ckpt", "wal.log")
    ckpt_store = os.path.join(root, "ckpt", "store")
    os.makedirs(os.path.dirname(replay_wal))
    os.makedirs(os.path.dirname(ckpt_wal))

    graph = DynamicAttributedGraph(
        STREAM_DATASET.graph.copy(), STREAM_DATASET.attributed.events.copy()
    )
    mutable = STREAM_DATASET.graph.copy()
    with WriteAheadLog(replay_wal, fsync=False) as wal:
        for seed in range(COLD_START_BATCHES):
            _, deltas = rewire_random_edges(
                mutable, 10, random_state=20_000 + seed,
                in_place=True, with_deltas=True,
            )
            batch = DeltaBatch.coerce(deltas)
            wal.append_batch(batch)
            graph.apply(batch)

    shutil.copyfile(replay_wal, ckpt_wal)
    store = CheckpointStore(ckpt_store, fsync=False)
    with WriteAheadLog(ckpt_wal, fsync=False) as wal:
        info = store.write(
            graph.snapshot().checkpoint_state(),
            config_digest="bench",
            wal_batches=wal.total_batches,
            wal_offset=wal.committed_offset,
        )
        wal.compact(info.wal_offset)

    _COLD_START.update(
        replay_wal=replay_wal, ckpt_wal=ckpt_wal, ckpt_store=ckpt_store,
        versions=graph.versions(), epoch=graph.epoch, final=graph,
    )
    return _COLD_START


def _cold_start(wal_path, store_root=None):
    """One timed boot through the recovery ladder; returns (secs, graph)."""
    from repro.storage.checkpoint import CheckpointStore
    from repro.storage.recovery import recover
    from repro.streaming.delta import WriteAheadLog

    deploy = _cold_start_deployments()
    graph = DynamicAttributedGraph(
        STREAM_DATASET.graph.copy(), STREAM_DATASET.attributed.events.copy()
    )
    start = time.perf_counter()
    store = (
        CheckpointStore(store_root, fsync=False)
        if store_root is not None else None
    )
    wal = WriteAheadLog(wal_path, fsync=False)
    try:
        report = recover(graph, wal, store=store, config_digest="bench")
    finally:
        wal.close()
    elapsed = time.perf_counter() - start
    assert graph.versions() == deploy["versions"]
    assert graph.epoch == deploy["epoch"]
    return elapsed, graph, report


def test_cold_start_full_wal_replay(benchmark):
    """Baseline: replay all 200 committed batches from the WAL."""
    _cold_start_deployments()

    def run():
        elapsed, _graph, report = _cold_start(_COLD_START["replay_wal"])
        assert report.path == "full_replay"
        assert report.replayed_batches == COLD_START_BATCHES

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_cold_start_from_checkpoint(benchmark):
    """The same boot from the checkpoint + compacted (empty-tail) WAL."""
    _cold_start_deployments()

    def run():
        elapsed, _graph, report = _cold_start(
            _COLD_START["ckpt_wal"], _COLD_START["ckpt_store"]
        )
        assert report.path == "checkpoint"
        assert report.replayed_batches == 0

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_checkpoint_cold_start_beats_full_replay():
    """The durability acceptance bar, measured directly: best-of-three
    boots, checkpoint cold start >= 3x faster than full WAL replay on the
    200-batch log — and the two recovered graphs are bit-identical."""
    import numpy as np

    deploy = _cold_start_deployments()
    replayed, checkpointed = [], []
    ckpt_graph = replay_graph = None
    for _ in range(3):
        secs, replay_graph, report = _cold_start(deploy["replay_wal"])
        assert report.path == "full_replay"
        replayed.append(secs)
        secs, ckpt_graph, report = _cold_start(
            deploy["ckpt_wal"], deploy["ckpt_store"]
        )
        assert report.path == "checkpoint"
        assert report.replayed_batches == 0
        checkpointed.append(secs)

    np.testing.assert_array_equal(
        ckpt_graph.csr.indptr, replay_graph.csr.indptr
    )
    np.testing.assert_array_equal(
        ckpt_graph.csr.indices, replay_graph.csr.indices
    )
    assert ckpt_graph.versions() == replay_graph.versions()
    for name in replay_graph.event_names():
        assert sorted(ckpt_graph.event_nodes(name)) == sorted(
            replay_graph.event_nodes(name)
        )

    best_replay, best_ckpt = min(replayed), min(checkpointed)
    speedup = best_replay / best_ckpt if best_ckpt > 0 else float("inf")
    print(
        f"\nfull replay: {best_replay:.4f}s, checkpoint: {best_ckpt:.4f}s, "
        f"speedup: {speedup:.1f}x"
    )
    assert best_ckpt * 3.0 <= best_replay, (
        f"checkpoint cold start {best_ckpt:.4f}s is not 3x faster than "
        f"full replay {best_replay:.4f}s (speedup {speedup:.1f}x)"
    )
