"""Benchmark/reproduction of Table 5 (rare pairs missed by proximity mining)."""

from repro.experiments import Table5Config

from .conftest import run_and_report

CONFIG = Table5Config(num_subnets=120, subnet_size=40, num_rare_pairs=2, sample_size=400)


def test_table5_rare_pairs_vs_proximity_patterns(benchmark):
    run_and_report(benchmark, "table5", CONFIG)
