"""Benchmark/reproduction of Table 1 (1-hop positive keyword pairs, DBLP)."""

from repro.experiments import Table1Config

from .conftest import run_and_report

CONFIG = Table1Config(num_communities=24, community_size=120, num_pairs=5, sample_size=400)


def test_table1_positive_keyword_pairs(benchmark):
    run_and_report(benchmark, "table1", CONFIG)
