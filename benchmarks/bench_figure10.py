"""Benchmark/reproduction of Figure 10 (BFS cost and z-score cost)."""

from repro.experiments import Figure10Config

from .conftest import run_and_report

CONFIG = Figure10Config(
    graph_sizes=(5_000, 10_000, 20_000, 40_000),
    levels=(1, 2, 3),
    bfs_repetitions=20,
    reference_node_counts=(200, 400, 600, 800, 1000),
    zscore_repetitions=5,
)


def test_figure10_bfs_and_zscore_cost(benchmark):
    run_and_report(benchmark, "figure10", CONFIG)
