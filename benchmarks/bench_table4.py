"""Benchmark/reproduction of Table 4 (2-hop negative alert pairs, Intrusion)."""

from repro.experiments import Table4Config

from .conftest import run_and_report

CONFIG = Table4Config(num_subnets=120, subnet_size=40, num_pairs=5, sample_size=400)


def test_table4_negative_alert_pairs(benchmark):
    run_and_report(benchmark, "table4", CONFIG)
