"""Benchmark/reproduction of Figure 6 (negative-pair recall vs noise)."""

from repro.experiments import Figure6Config

from .conftest import run_and_report

CONFIG = Figure6Config(
    num_communities=12,
    community_size=100,
    event_size=200,
    num_pairs=4,
    sample_size=200,
    noise_grids={1: (0.0, 0.4, 0.9), 2: (0.0, 0.4, 0.9), 3: (0.0, 0.2, 0.5)},
)


def test_figure6_negative_recall_curves(benchmark):
    run_and_report(benchmark, "figure6", CONFIG)
