"""Benchmark/reproduction of Figure 7 (batched importance sampling)."""

from repro.experiments import Figure7Config

from .conftest import run_and_report

CONFIG = Figure7Config(
    num_communities=12,
    community_size=100,
    event_size=200,
    num_pairs=4,
    sample_size=200,
    batch_sizes=(1, 5, 10, 20),
)


def test_figure7_batched_importance_sampling(benchmark):
    run_and_report(benchmark, "figure7", CONFIG)
