"""Intrusion-detection scenario: correlated alert types in a computer network.

The paper's Intrusion case study (Tables 3-5) shows three behaviours that a
security analyst cares about:

* related attack techniques are *alternated* across the hosts of a subnet, so
  they attract each other structurally even though they rarely fire on the
  same host (positive TESC, flat transaction correlation);
* techniques tied to different platforms live in different parts of the
  network (negative TESC at h = 2);
* rare technique pairs are invisible to frequency-based pattern mining but
  still detectable by TESC.

This example reproduces all three on the synthetic intrusion-like network and
prints an analyst-style report.

Run with:  python examples/intrusion_alerts.py
"""

from __future__ import annotations

from repro.baselines import ProximityPatternMiner, transaction_correlation
from repro.core import TescConfig, TescTester
from repro.datasets import make_intrusion_like
from repro.utils.tables import TextTable


def main() -> None:
    dataset = make_intrusion_like(num_subnets=100, subnet_size=35, random_state=404)
    attributed = dataset.attributed
    print(f"alert network: {attributed.num_nodes} hosts, {attributed.num_edges} links, "
          f"{len(attributed.event_names())} alert types")

    tester = TescTester(attributed)
    miner = ProximityPatternMiner(attributed, minsup=10 / attributed.num_nodes)

    print("\n== alternating attack techniques (expected: attract, TC blind) ==")
    table = TextTable(["alert pair", "TESC z (h=1)", "TC z", "verdict"], float_format="{:.2f}")
    for event_a, event_b in dataset.positive_pairs[:3]:
        result = tester.test(event_a, event_b,
                             TescConfig(vicinity_level=1, sample_size=400, random_state=1))
        tc = transaction_correlation(attributed.events, event_a, event_b)
        table.add_row([f"{event_a} vs {event_b}", result.z_score, tc.z_score,
                       result.verdict.value])
    print(table.render())

    print("\n== platform-disjoint techniques (expected: repulse at h=2) ==")
    table = TextTable(["alert pair", "TESC z (h=2)", "TC z", "verdict"], float_format="{:.2f}")
    for event_a, event_b in dataset.negative_pairs[:3]:
        result = tester.test(event_a, event_b,
                             TescConfig(vicinity_level=2, sample_size=400, random_state=1))
        tc = transaction_correlation(attributed.events, event_a, event_b)
        table.add_row([f"{event_a} vs {event_b}", result.z_score, tc.z_score,
                       result.verdict.value])
    print(table.render())

    print("\n== rare technique pairs (expected: TESC finds them, pFP misses them) ==")
    table = TextTable(
        ["alert pair", "occurrences", "TESC z (h=1)", "p-value", "found by pFP"],
        float_format="{:.3f}",
    )
    for event_a, event_b in dataset.rare_pairs:
        result = tester.test(
            event_a, event_b,
            TescConfig(vicinity_level=1, sample_size=400, alternative="greater",
                       random_state=1),
        )
        counts = (attributed.events.occurrence_count(event_a)
                  + attributed.events.occurrence_count(event_b))
        table.add_row([
            f"{event_a} vs {event_b}", counts, result.z_score, result.p_value,
            miner.discovers_pair(event_a, event_b),
        ])
    print(table.render())


if __name__ == "__main__":
    main()
