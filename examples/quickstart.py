"""Quickstart: measure the structural correlation of two events on a graph.

This example builds a small social-network-like graph, places two "product
purchase" events on it, and runs the TESC significance test at vicinity
levels 1-3 with the default Batch BFS sampler, printing the score, z-score,
p-value and verdict for each level.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import AttributedGraph, TescConfig, TescTester
from repro.graph.generators import community_ring_graph
from repro.utils.tables import TextTable


def build_demo_graph() -> AttributedGraph:
    """A 10-community social graph with two community-localised products."""
    rng = np.random.default_rng(7)
    graph = community_ring_graph(
        num_communities=10, community_size=80, intra_degree=6.0,
        inter_edges_per_link=25, random_state=rng,
    )

    def community(index: int) -> np.ndarray:
        return np.arange(index * 80, (index + 1) * 80)

    # "similac" and "enfamil" are both popular inside the first two
    # communities (the paper's "mother communities" example): different
    # parents buy different brands, but both brands concentrate in the same
    # part of the network.
    similac = np.concatenate([
        rng.choice(community(0), 35, replace=False),
        rng.choice(community(1), 18, replace=False),
    ])
    enfamil = np.concatenate([
        rng.choice(community(0), 32, replace=False),
        rng.choice(community(1), 20, replace=False),
    ])
    # "thinkpad" sells on the other side of the network entirely.
    thinkpad = np.concatenate([
        rng.choice(community(5), 35, replace=False),
        rng.choice(community(6), 18, replace=False),
    ])
    return AttributedGraph(
        graph, {"similac": similac, "enfamil": enfamil, "thinkpad": thinkpad}
    )


def main() -> None:
    attributed = build_demo_graph()
    print(attributed)
    tester = TescTester(attributed)

    table = TextTable(["pair", "h", "score t", "z-score", "p-value", "verdict"],
                      float_format="{:.3f}")
    for event_a, event_b in [("similac", "enfamil"), ("similac", "thinkpad")]:
        for level in (1, 2, 3):
            config = TescConfig(vicinity_level=level, sample_size=300, random_state=11)
            result = tester.test(event_a, event_b, config)
            table.add_row([
                f"{event_a} vs {event_b}", level, result.score,
                result.z_score, result.p_value, result.verdict.value,
            ])
    print()
    print(table.render())
    print()
    print("Expected: similac/enfamil attract each other (positive verdict), "
          "similac/thinkpad repulse each other (negative verdict).")


if __name__ == "__main__":
    main()
