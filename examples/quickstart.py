"""Quickstart: open a session, rank event pairs, commit, re-rank.

This example builds a small social-network-like graph, places three "product
purchase" events on it, and drives everything through the package's front
door — :func:`repro.open_session`:

* rank the event pairs at vicinity levels 1-3 (each answer reports the
  commit epoch it was computed at);
* commit a burst of new purchases and watch the epoch advance;
* re-rank at the new epoch, and re-read the *old* epoch through
  ``session.at_epoch`` — snapshot isolation means history stays readable
  while the graph moves on.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import TescConfig, open_session
from repro.graph.generators import community_ring_graph
from repro.utils.tables import TextTable


def build_demo_events() -> tuple:
    """A 10-community social graph with two community-localised products."""
    rng = np.random.default_rng(7)
    graph = community_ring_graph(
        num_communities=10, community_size=80, intra_degree=6.0,
        inter_edges_per_link=25, random_state=rng,
    )

    def community(index: int) -> np.ndarray:
        return np.arange(index * 80, (index + 1) * 80)

    # "similac" and "enfamil" are both popular inside the first two
    # communities (the paper's "mother communities" example): different
    # parents buy different brands, but both brands concentrate in the same
    # part of the network.
    similac = np.concatenate([
        rng.choice(community(0), 35, replace=False),
        rng.choice(community(1), 18, replace=False),
    ])
    enfamil = np.concatenate([
        rng.choice(community(0), 32, replace=False),
        rng.choice(community(1), 20, replace=False),
    ])
    # "thinkpad" sells on the other side of the network entirely.
    thinkpad = np.concatenate([
        rng.choice(community(5), 35, replace=False),
        rng.choice(community(6), 18, replace=False),
    ])
    return graph, {"similac": similac, "enfamil": enfamil, "thinkpad": thinkpad}


def main() -> None:
    graph, events = build_demo_events()
    pairs = [("similac", "enfamil"), ("similac", "thinkpad")]

    with open_session(graph, TescConfig(sample_size=300, random_state=11),
                      events=events) as session:
        print(session)

        table = TextTable(["pair", "h", "score t", "z-score", "p-value", "verdict"],
                          float_format="{:.3f}")
        for level in (1, 2, 3):
            response = session.rank(pairs, vicinity_level=level)
            for record in response["pairs"]:
                table.add_row([
                    f"{record['event_a']} vs {record['event_b']}", level,
                    record["score"], record["z_score"], record["p_value"],
                    record["verdict"],
                ])
        print()
        print(table.render())
        print()
        print("Expected: similac/enfamil attract each other (positive verdict), "
              "similac/thinkpad repulse each other (negative verdict).")

        # HTAP: commit a burst of thinkpad purchases inside the mother
        # communities and re-rank.  The old epoch stays readable through a
        # leased view for as long as we hold it.
        before = session.rank(pairs)
        with session.at_epoch() as view:
            receipt = session.commit(
                [("event_attach", "thinkpad", node) for node in range(40, 60)]
            )
            after = session.rank(pairs)
            replay = view.rank(pairs)
        print()
        print(f"commit attached {receipt['attached']} occurrences: "
              f"epoch {before['epoch']} -> {after['epoch']}")
        print(f"re-reading epoch {view.epoch} under the lease is bit-identical: "
              f"{replay['pairs'] == before['pairs']}")


if __name__ == "__main__":
    main()
