"""Throughput scenario: rank every keyword pair on one graph in a single batch.

The paper's workloads (keyword screening, intrusion-alert correlation) test
*many* event pairs against one graph.  Looping
:class:`~repro.core.tesc.TescTester` pays the sampling and density costs per
pair; a :func:`repro.open_session` session pays them once — one shared
reference sample, one density pass over all events — and additionally caches
the answer per epoch, so repeating the query is free until the next commit.
This example runs both on the same DBLP-like network and prints the ranking
together with the measured speedup.

Run with:  python examples/rank_events.py
"""

from __future__ import annotations

import time

from repro import TescConfig, open_session
from repro.core import TescTester
from repro.datasets import make_dblp_like
from repro.utils.timing import format_seconds


def main() -> None:
    dataset = make_dblp_like(
        num_communities=20, community_size=120,
        num_positive_pairs=4, num_negative_pairs=4,
        num_background_keywords=8, random_state=2024,
    )
    attributed = dataset.attributed
    config = TescConfig(vicinity_level=1, sample_size=400, random_state=5)

    pairs = list(dataset.positive_pairs) + list(dataset.negative_pairs)
    background = dataset.background_events
    pairs += [(background[i], background[i + 1]) for i in range(0, len(background), 2)]

    print(f"co-author graph: {attributed.num_nodes} authors, "
          f"{attributed.num_edges} co-author edges; testing {len(pairs)} keyword pairs")
    print()

    # The throughput path: one shared sample, one density pass, ranked output.
    with open_session(attributed, config) as session:
        started = time.perf_counter()
        response = session.rank(pairs, sort_by="abs_z")
        batch_seconds = time.perf_counter() - started

        # Same epoch, same config: the second call is a cache hit.
        started = time.perf_counter()
        session.rank(pairs, sort_by="abs_z")
        cached_seconds = time.perf_counter() - started

    records = response["pairs"]
    header = f"{'#':>2}  {'pair':<28} {'score t':>8} {'z':>7} {'p-value':>9}  verdict"
    print(header)
    print("-" * len(header))
    for record in records:
        print(f"{record['rank']:>2}  "
              f"{record['event_a'] + ' vs ' + record['event_b']:<28} "
              f"{record['score']:>+8.4f} {record['z_score']:>+7.2f} "
              f"{record['p_value']:>9.2e}  {record['verdict']}")
    print()
    verdicts = [record["verdict"] for record in records]
    print(f"verdicts: {verdicts.count('positive')} positive, "
          f"{verdicts.count('negative')} negative, "
          f"{verdicts.count('independent')} independent "
          f"(planted: {len(dataset.positive_pairs)} / {len(dataset.negative_pairs)})")
    print(f"answered at epoch {response['epoch']}; repeating the query at the "
          f"same epoch took {format_seconds(cached_seconds)} (cache hit)")

    # The same pairs through the per-pair tester, for the wall-clock contrast.
    tester = TescTester(attributed, config)
    started = time.perf_counter()
    for event_a, event_b in pairs:
        tester.test(event_a, event_b)
    loop_seconds = time.perf_counter() - started

    print()
    print(f"session rank: {format_seconds(batch_seconds)}, per-pair loop: "
          f"{format_seconds(loop_seconds)} — "
          f"{loop_seconds / batch_seconds:.1f}x faster in one batch")


if __name__ == "__main__":
    main()
