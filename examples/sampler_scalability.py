"""Scalability scenario: choosing a reference-node sampler.

The paper's guidance (Sections 4.4 and 5.3): Batch BFS when the event set is
small, Importance sampling when the event set is large, Whole-graph sampling
only for very large event sets at high vicinity levels.  This example
measures all three samplers on a scale-free (Twitter-like) graph across a
range of event-set sizes and prints the timing table plus a recommendation
per configuration, and finally verifies that all samplers agree on the
verdict for the same event pair.

Run with:  python examples/sampler_scalability.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import AttributedGraph, TescConfig, TescTester
from repro.datasets import make_twitter_like
from repro.graph.vicinity import VicinityIndex
from repro.sampling.registry import create_sampler
from repro.utils.tables import TextTable


def main() -> None:
    rng = np.random.default_rng(3)
    graph = make_twitter_like(num_nodes=30_000, edges_per_node=8, random_state=rng)
    print(f"twitter-like graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    # The |V^h_v| index is an offline artifact (computed once per graph).
    index = VicinityIndex(graph, levels=(1, 2), lazy=True)

    samplers = ("batch_bfs", "importance", "whole_graph")
    table = TextTable(["|Va∪b|", "h"] + [f"{name} (ms)" for name in samplers]
                      + ["recommended"], float_format="{:.1f}")
    for level in (1, 2):
        for event_size in (1_000, 5_000, 15_000):
            event_nodes = rng.choice(graph.num_nodes, size=event_size, replace=False)
            timings = []
            for name in samplers:
                sampler = create_sampler(name, graph, vicinity_index=index, random_state=1)
                started = time.perf_counter()
                sampler.sample(event_nodes, level, 300)
                timings.append(1000.0 * (time.perf_counter() - started))
            best = samplers[int(np.argmin(timings))]
            table.add_row([event_size, level] + timings + [best])
    print()
    print(table.render())

    # All samplers must agree on a clear-cut event pair.  Linked-pair
    # attraction needs a *clustered* substrate to be visible at h=1 (in a
    # clustering-free preferential-attachment graph the one-sided neighbours
    # of each link outvote the co-located ones), so the agreement check runs
    # on a community-structured graph — the same substrate the recall
    # experiments use.
    from repro.graph.generators import community_ring_graph
    from repro.simulation import generate_positive_pair

    clustered = community_ring_graph(12, 100, 6.0, 25, random_state=rng).to_csr()
    nodes_a, nodes_b = generate_positive_pair(clustered, 250, 1, random_state=rng)
    attributed = AttributedGraph(clustered, {"attack": nodes_a, "follow_up": nodes_b})
    print("\nverdict agreement for a planted attracting event pair (clustered graph):")
    tester = TescTester(attributed)
    for name in samplers:
        config = TescConfig(vicinity_level=1, sampler=name, sample_size=300, random_state=2)
        result = tester.test("attack", "follow_up", config)
        print(f"  {name:12s} z={result.z_score:+7.2f} verdict={result.verdict.value}")


if __name__ == "__main__":
    main()
