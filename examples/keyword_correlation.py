"""DBLP-style scenario: which keyword pairs are structurally correlated?

This example generates the synthetic DBLP-like co-author network (planted
positively and negatively correlated keyword pairs plus background keywords),
then:

1. screens every planted pair with the TESC test at h = 1 and h = 3,
2. compares each verdict with plain Transaction Correlation (Lift / τ-b),
3. shows that the negatively correlated pairs would be invisible to a
   transaction-only analysis — the paper's Table 1 / Table 2 story.

Run with:  python examples/keyword_correlation.py
"""

from __future__ import annotations

from repro.baselines import transaction_correlation
from repro.core import TescConfig, TescTester
from repro.datasets import make_dblp_like
from repro.utils.tables import TextTable


def main() -> None:
    dataset = make_dblp_like(
        num_communities=20, community_size=120,
        num_positive_pairs=3, num_negative_pairs=3,
        num_background_keywords=5, random_state=2024,
    )
    attributed = dataset.attributed
    print(f"co-author graph: {attributed.num_nodes} authors, "
          f"{attributed.num_edges} co-author edges, "
          f"{len(attributed.event_names())} keywords")

    tester = TescTester(attributed)
    table = TextTable(
        ["pair", "planted", "TESC z (h=1)", "TESC z (h=3)", "TC z", "lift"],
        float_format="{:.2f}",
    )

    def analyse(event_a: str, event_b: str, planted: str) -> None:
        z_by_level = {}
        for level in (1, 3):
            config = TescConfig(vicinity_level=level, sample_size=400, random_state=5)
            z_by_level[level] = tester.test(event_a, event_b, config).z_score
        tc = transaction_correlation(attributed.events, event_a, event_b)
        table.add_row([
            f"{event_a} vs {event_b}", planted,
            z_by_level[1], z_by_level[3], tc.z_score, tc.lift,
        ])

    for event_a, event_b in dataset.positive_pairs:
        analyse(event_a, event_b, "attraction")
    for event_a, event_b in dataset.negative_pairs:
        analyse(event_a, event_b, "repulsion")
    # Two background keywords: small, uniformly scattered, unrelated.
    background = dataset.background_events
    if len(background) >= 2:
        analyse(background[0], background[1], "background")

    print()
    print(table.render())
    print()
    print("Reading the table: planted attractions have large positive TESC z at "
          "every level; planted repulsions have large negative TESC z even though "
          "their transaction-correlation column is near zero or positive, i.e. a "
          "market-basket analysis would never flag them.  The background pair of "
          "rare, scattered keywords also reads as repulsion at h=1 — rare unrelated "
          "topics almost never share a 1-hop neighbourhood — but the signal fades "
          "as h grows, unlike the planted repulsions which stay strongly negative.")


if __name__ == "__main__":
    main()
